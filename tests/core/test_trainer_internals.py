"""White-box tests of the trainer's document-augmentation machinery."""

import numpy as np
import pytest

from repro.core import OmniMatchConfig, OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=51),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


def make_trainer(world, **overrides):
    dataset, split = world
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=24, vocab_size=300,
                epochs=1, early_stopping=False)
    base.update(overrides)
    return OmniMatchTrainer(dataset, split, OmniMatchConfig(**base))


class TestBatchArrays:
    def test_shapes_aligned(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        batch = split.train_interactions(dataset)[:10]
        src, tgt, item, labels = trainer._batch_arrays(batch)
        assert src.shape == tgt.shape == item.shape == (10, 24)
        assert labels.shape == (10,)
        assert labels.dtype == np.int64

    def test_labels_zero_based(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        batch = split.train_interactions(dataset)[:50]
        _, _, _, labels = trainer._batch_arrays(batch)
        assert labels.min() >= 0 and labels.max() <= 4

    def test_target_dropout_produces_empty_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=1.0, aux_mix_prob=0.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        np.testing.assert_allclose(tgt, 0)

    def test_full_aux_mix_uses_auxiliary_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=0.0, aux_mix_prob=1.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            expected = trainer._auxiliary_doc(interaction.user_id)
            np.testing.assert_array_equal(doc, expected)

    def test_no_augmentation_uses_real_docs(self, world):
        dataset, split = world
        trainer = make_trainer(world, target_dropout_prob=0.0, aux_mix_prob=0.0)
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            np.testing.assert_array_equal(
                doc, trainer.store.user_target_doc(interaction.user_id)
            )

    def test_aux_disabled_never_mixes(self, world):
        dataset, split = world
        trainer = make_trainer(
            world, use_auxiliary_reviews=False, aux_mix_prob=1.0,
            target_dropout_prob=0.0,
        )
        batch = split.train_interactions(dataset)[:10]
        _, tgt, _, _ = trainer._batch_arrays(batch)
        for interaction, doc in zip(batch, tgt):
            np.testing.assert_array_equal(
                doc, trainer.store.user_target_doc(interaction.user_id)
            )

    def test_aux_doc_cached(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        user = split.train_users[0]
        assert trainer._auxiliary_doc(user) is trainer._auxiliary_doc(user)


class TestTrainerErrors:
    def test_empty_train_set_raises(self, world):
        dataset, split = world
        trainer = make_trainer(world)
        # sabotage: a split whose train users have no target reviews
        from repro.data.split import ColdStartSplit

        bad_split = ColdStartSplit(
            train_users=("nonexistent-user",),
            valid_users=split.valid_users,
            test_users=split.test_users,
        )
        trainer.split = bad_split
        with pytest.raises(ValueError):
            trainer.fit()
