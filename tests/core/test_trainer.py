"""Integration-ish tests for the trainer and cold-start predictor."""

import numpy as np
import pytest

from repro.core import (
    ColdStartPredictor,
    OmniMatchConfig,
    OmniMatchTrainer,
)
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval.metrics import rmse


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=21),
    )
    split = cold_start_split(dataset, seed=3)
    return dataset, split


def tiny_config(**overrides):
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=24, dropout=0.1,
                vocab_size=300, epochs=3, batch_size=32, early_stopping=False)
    base.update(overrides)
    return OmniMatchConfig(**base)


@pytest.fixture(scope="module")
def trained(world):
    dataset, split = world
    trainer = OmniMatchTrainer(dataset, split, tiny_config())
    return trainer.fit()


class TestTrainer:
    def test_history_recorded(self, trained):
        assert len(trained.history) == 3
        assert all(np.isfinite(s.total) for s in trained.history)

    def test_loss_decreases(self, world):
        dataset, split = world
        result = OmniMatchTrainer(dataset, split, tiny_config(epochs=6)).fit()
        assert result.history[-1].rating < result.history[0].rating

    def test_train_seconds_positive(self, trained):
        assert trained.train_seconds > 0

    def test_model_left_in_eval_mode(self, trained):
        assert not trained.model.training

    def test_early_stopping_restores_best(self, world):
        dataset, split = world
        config = tiny_config(epochs=8, early_stopping=True, patience=2)
        trainer = OmniMatchTrainer(dataset, split, config)
        result = trainer.fit()
        recorded = [s.valid_rmse for s in result.history if s.valid_rmse is not None]
        assert recorded
        # the restored model must reproduce (approximately) the best epoch
        predictor = ColdStartPredictor(result)
        valid = split.eval_interactions(dataset, "valid")
        actual = np.array([r.rating for r in valid])
        final = rmse(actual, predictor.predict_interactions(valid))
        assert final == pytest.approx(min(recorded), abs=1e-6)

    def test_early_stopping_halts_before_max(self, world):
        dataset, split = world
        config = tiny_config(epochs=50, early_stopping=True, patience=1)
        result = OmniMatchTrainer(dataset, split, config).fit()
        assert len(result.history) < 50

    def test_validate_every_records(self, world):
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, tiny_config(epochs=4))
        result = trainer.fit(validate_every=2)
        assert result.history[1].valid_rmse is not None
        assert result.history[0].valid_rmse is None

    def test_deterministic_given_seed(self, world):
        dataset, split = world
        r1 = OmniMatchTrainer(dataset, split, tiny_config(seed=4)).fit()
        r2 = OmniMatchTrainer(dataset, split, tiny_config(seed=4)).fit()
        assert r1.history[-1].total == pytest.approx(r2.history[-1].total)

    def test_adam_optimizer_option(self, world):
        dataset, split = world
        result = OmniMatchTrainer(
            dataset, split, tiny_config(epochs=2, optimizer="adam")
        ).fit()
        assert len(result.history) == 2


class TestColdStartPredictor:
    def test_predictions_for_cold_users(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        test = split.eval_interactions(dataset, "test")
        preds = predictor.predict_interactions(test)
        assert preds.shape == (len(test),)
        assert ((preds >= 1.0) & (preds <= 5.0)).all()

    def test_beats_worst_case_constant(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        test = split.eval_interactions(dataset, "test")
        actual = np.array([r.rating for r in test])
        model_rmse = rmse(actual, predictor.predict_interactions(test))
        assert model_rmse < rmse(actual, np.full_like(actual, 1.0))

    def test_warm_user_uses_real_target_doc(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        u = split.train_users[0]
        doc = predictor._target_doc(u)
        np.testing.assert_array_equal(doc, trained.store.user_target_doc(u))

    def test_cold_user_uses_auxiliary_doc(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        u = split.test_users[0]
        reviews = trained.aux_generator.generate(u)
        assert reviews  # coverage is high in this world
        expected = trained.store.encode_reviews(reviews)
        np.testing.assert_array_equal(predictor._target_doc(u), expected)

    def test_without_aux_falls_back_to_source_doc(self, world):
        dataset, split = world
        config = tiny_config(epochs=1, use_auxiliary_reviews=False)
        result = OmniMatchTrainer(dataset, split, config).fit()
        predictor = ColdStartPredictor(result)
        u = split.test_users[0]
        np.testing.assert_array_equal(
            predictor._target_doc(u), result.store.user_source_doc(u)
        )

    def test_predict_pairs_matches_interactions(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        test = split.eval_interactions(dataset, "test")[:5]
        a = predictor.predict_interactions(test)
        b = predictor.predict_pairs([(r.user_id, r.item_id) for r in test])
        np.testing.assert_allclose(a, b)
