"""Exhaustive OmniMatchConfig validation tests."""

import dataclasses

import pytest

from repro.core import OmniMatchConfig


class TestDefaults:
    def test_paper_structural_values(self):
        """The structural hyperparameters follow the paper's §5.4."""
        config = OmniMatchConfig()
        assert config.kernel_sizes == (3, 4, 5)
        assert config.temperature == 0.07
        assert config.alpha == 0.2
        assert config.beta == 0.1
        assert config.batch_size == 64
        assert config.rho == 0.95

    def test_frozen(self):
        config = OmniMatchConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.alpha = 0.5

    def test_equality_and_replace(self):
        a = OmniMatchConfig()
        b = dataclasses.replace(a, seed=a.seed)
        assert a == b
        c = dataclasses.replace(a, alpha=0.9)
        assert a != c


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(field="headline"),
        dict(extractor="rnn"),
        dict(cold_inference="teleport"),
        dict(alignment_method="ot"),
        dict(aux_mix_prob=-0.1),
        dict(aux_mix_prob=1.5),
        dict(alpha=-0.01),
        dict(beta=-1.0),
        dict(kernel_sizes=(0,)),
        dict(doc_len=2, kernel_sizes=(3,)),
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OmniMatchConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(field="text"),
        dict(extractor="transformer"),
        dict(cold_inference="blend"),
        dict(cold_inference="aux_only"),
        dict(alignment_method="mmd"),
        dict(aux_mix_prob=0.0),
        dict(aux_mix_prob=1.0),
        dict(alpha=0.0, beta=0.0),
        dict(pooling="max"),
    ])
    def test_valid_accepted(self, kwargs):
        OmniMatchConfig(**kwargs)  # must not raise
