"""Tests for model checkpointing (save / reload round-trips)."""

import numpy as np
import pytest

from repro.core import (
    ColdStartPredictor,
    OmniMatchConfig,
    OmniMatchTrainer,
    load_checkpoint,
    save_checkpoint,
)
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=41),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


@pytest.fixture(scope="module")
def trained(world):
    dataset, split = world
    config = OmniMatchConfig(
        embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=24, dropout=0.0,
        epochs=2, early_stopping=False, seed=3,
    )
    return OmniMatchTrainer(dataset, split, config).fit()


class TestCheckpointRoundTrip:
    def test_files_written(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / "config.json").exists()
        assert (tmp_path / "ckpt" / "weights.npz").exists()

    def test_reloaded_predictions_identical(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        test = split.eval_interactions(dataset, "test")[:20]
        original = ColdStartPredictor(trained).predict_interactions(test)
        restored = ColdStartPredictor(reloaded).predict_interactions(test)
        np.testing.assert_allclose(original, restored)

    def test_config_preserved(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert reloaded.model.config == trained.model.config

    def test_reloaded_model_in_eval_mode(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert not reloaded.model.training

    def test_history_not_persisted(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert reloaded.history == []
