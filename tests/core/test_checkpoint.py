"""Tests for model checkpointing (save / reload round-trips)."""

import numpy as np
import pytest

from repro.core import (
    ColdStartPredictor,
    OmniMatchConfig,
    OmniMatchTrainer,
    load_checkpoint,
    save_checkpoint,
)
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=41),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


@pytest.fixture(scope="module")
def trained(world):
    dataset, split = world
    config = OmniMatchConfig(
        embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=24, dropout=0.0,
        epochs=2, early_stopping=False, seed=3,
    )
    return OmniMatchTrainer(dataset, split, config).fit()


class TestCheckpointRoundTrip:
    def test_files_written(self, trained, tmp_path):
        save_checkpoint(trained, tmp_path / "ckpt")
        assert (tmp_path / "ckpt" / "config.json").exists()
        assert (tmp_path / "ckpt" / "weights.npz").exists()

    def test_reloaded_predictions_identical(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        test = split.eval_interactions(dataset, "test")[:20]
        original = ColdStartPredictor(trained).predict_interactions(test)
        restored = ColdStartPredictor(reloaded).predict_interactions(test)
        np.testing.assert_allclose(original, restored)

    def test_config_preserved(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert reloaded.model.config == trained.model.config

    def test_reloaded_model_in_eval_mode(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert not reloaded.model.training

    def test_history_not_persisted(self, world, trained, tmp_path):
        dataset, split = world
        save_checkpoint(trained, tmp_path / "ckpt")
        reloaded = load_checkpoint(tmp_path / "ckpt", dataset, split)
        assert reloaded.history == []


class TestPruneCheckpoints:
    """Pruning must never report a deletion that did not happen."""

    @staticmethod
    def _make_run(tmp_path, epochs):
        from repro.core.checkpoint import checkpoint_directory_name

        run = tmp_path / "run"
        for epoch in epochs:
            child = run / checkpoint_directory_name(epoch)
            child.mkdir(parents=True)
            (child / "marker.txt").write_text("x")
        return run

    def test_all_removals_succeed(self, tmp_path):
        from repro.core.checkpoint import checkpoint_directory_name, prune_checkpoints

        run = self._make_run(tmp_path, [1, 2, 3])
        removed = prune_checkpoints(run, keep_last=1)
        assert [p.name for p in removed] == [
            checkpoint_directory_name(1), checkpoint_directory_name(2),
        ]
        assert (run / checkpoint_directory_name(3)).exists()

    def test_silent_rmtree_failure_surfaces(self, tmp_path, monkeypatch):
        # Regression: rmtree(ignore_errors=True) can fail without raising
        # (permissions, files pinned open); prune used to append the path to
        # ``removed`` and emit the telemetry event anyway.
        import shutil

        from repro.core import checkpoint as ckpt
        from repro.obs import TelemetrySink, read_events, use_sink

        run = self._make_run(tmp_path, [1, 2, 3])
        stuck = run / ckpt.checkpoint_directory_name(1)
        real_rmtree = shutil.rmtree

        def selective_rmtree(path, **kwargs):
            if str(path) == str(stuck):
                return  # swallow the failure, as ignore_errors=True would
            real_rmtree(path, **kwargs)

        monkeypatch.setattr(ckpt.shutil, "rmtree", selective_rmtree)
        sink = TelemetrySink(tmp_path / "obs", run_id="prune-fail")
        with use_sink(sink), pytest.warns(RuntimeWarning, match="could not prune"):
            removed = ckpt.prune_checkpoints(run, keep_last=1)
        sink.close()

        assert [p.name for p in removed] == [ckpt.checkpoint_directory_name(2)]
        assert stuck.exists()
        [event] = [
            e for e in read_events(sink.path) if e["kind"] == "checkpoint_prune"
        ]
        assert event["removed"] == [str(run / ckpt.checkpoint_directory_name(2))]
        assert event["failed"] == [str(stuck)]
