"""Unit tests for the Auxiliary Reviews Generation Module (Algorithm 1)."""

import pytest

from repro.core import AuxiliaryReviewGenerator
from repro.data import (
    CrossDomainDataset,
    DomainData,
    GeneratorConfig,
    Review,
    cold_start_split,
    generate_domain_pair,
)


def tiny_world():
    """Hand-built world where Algorithm 1's choices are fully enumerable."""
    source = DomainData(
        "books",
        [
            Review("cold", "b1", 5.0, "vampire romance"),
            Review("warm1", "b1", 5.0, "loved the vampires"),
            Review("warm2", "b1", 4.0, "pretty good"),
            Review("warm3", "b1", 5.0, "fangs galore"),
            Review("cold", "b2", 2.0, "boring history"),
            Review("warm1", "b2", 2.0, "dull chronicle"),
        ],
    )
    target = DomainData(
        "movies",
        [
            Review("warm1", "m1", 5.0, "fang-tastic fun"),
            Review("warm1", "m2", 4.0, "good adventure"),
            Review("warm3", "m3", 5.0, "scary and sexy"),
        ],
    )
    return CrossDomainDataset(source, target)


class TestAlgorithmOne:
    def test_borrows_only_from_allowed_users(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=["warm1"], seed=0)
        trace = gen.explain("cold")
        for selection in trace:
            if selection.succeeded:
                assert selection.like_minded_user == "warm1"

    def test_like_minded_requires_same_item_same_rating(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(
            dataset, allowed_users=["warm1", "warm2", "warm3"], seed=0
        )
        trace = gen.explain("cold")
        # record (b1, 5.0): warm2 gave 4.0 so can never be selected
        first = trace[0]
        assert first.like_minded_user in ("warm1", "warm3")

    def test_borrowed_review_comes_from_target_history(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=["warm1", "warm3"], seed=0)
        target_texts = {r.summary for r in dataset.target.reviews}
        for review in gen.generate("cold"):
            assert review in target_texts

    def test_never_selects_self(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(
            dataset, allowed_users=["cold", "warm1", "warm3"], seed=0
        )
        for selection in gen.explain("cold"):
            assert selection.like_minded_user != "cold"

    def test_one_selection_per_source_record(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=["warm1", "warm3"], seed=0)
        trace = gen.explain("cold")
        assert len(trace) == len(dataset.source.reviews_of_user("cold"))

    def test_no_like_minded_user_yields_failure_entry(self):
        dataset = tiny_world()
        # warm3 never rated b2 with 2.0, so record b2 must fail
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=["warm3"], seed=0)
        trace = gen.explain("cold")
        b2 = [s for s in trace if s.source_item == "b2"][0]
        assert not b2.succeeded
        assert b2.like_minded_user is None

    def test_generate_skips_failures(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=["warm3"], seed=0)
        reviews = gen.generate("cold")
        assert len(reviews) == 1  # only the b1 record has warm3 as like-minded

    def test_caching_is_stable(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(
            dataset, allowed_users=["warm1", "warm3"], seed=0
        )
        assert gen.generate("cold") is gen.generate("cold")

    def test_deterministic_given_seed(self):
        dataset = tiny_world()
        a = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=7).generate("cold")
        b = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=7).generate("cold")
        assert a == b

    def test_order_independent_determinism(self):
        """Selections for a user must not depend on which users were
        processed before them (training-time lazy generation and a fresh
        generator must agree)."""
        dataset = tiny_world()
        gen1 = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=7)
        gen1.generate("warm1")  # consume selections for another user first
        doc_after_other = gen1.generate("cold")
        gen2 = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=7)
        assert gen2.generate("cold") == doc_after_other

    def test_explain_idempotent(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=7)
        assert gen.explain("cold") == gen.explain("cold")

    def test_user_without_source_history_gets_empty_doc(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, ["warm1"], seed=0)
        assert gen.generate("nobody") == []

    def test_invalid_field_rejected(self):
        with pytest.raises(ValueError):
            AuxiliaryReviewGenerator(tiny_world(), [], field="headline")

    def test_coverage_metric(self):
        dataset = tiny_world()
        gen = AuxiliaryReviewGenerator(dataset, ["warm1", "warm3"], seed=0)
        assert gen.coverage(["cold"]) == 1.0
        assert gen.coverage([]) == 0.0
        assert gen.coverage(["nobody"]) == 0.0


class TestOnGeneratedWorld:
    """Protocol-level checks on a realistic generated world."""

    @pytest.fixture(scope="class")
    def world(self):
        dataset = generate_domain_pair(
            "books",
            "movies",
            GeneratorConfig(num_users=120, num_items_per_domain=50,
                            reviews_per_user_mean=6.0, seed=13),
        )
        split = cold_start_split(dataset, seed=1)
        gen = AuxiliaryReviewGenerator(dataset, allowed_users=split.train_users, seed=0)
        return dataset, split, gen

    def test_never_borrows_cold_users_reviews(self, world):
        dataset, split, gen = world
        cold = set(split.cold_users)
        for user in split.test_users:
            for selection in gen.explain(user):
                if selection.succeeded:
                    assert selection.like_minded_user not in cold

    def test_high_coverage_for_cold_users(self, world):
        _, split, gen = world
        assert gen.coverage(split.cold_users) > 0.8

    def test_aux_reviews_are_real_target_reviews(self, world):
        dataset, split, gen = world
        target_summaries = {r.summary for r in dataset.target.reviews}
        for user in split.test_users[:10]:
            for review in gen.generate(user):
                assert review in target_summaries
