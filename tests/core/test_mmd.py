"""Tests for the MMD alignment alternative (paper §4.4's versatility claim)."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import OmniMatchConfig, OmniMatchModel, mmd_rbf
from repro.core.adversarial import DomainAdversary


class TestMMD:
    def test_zero_for_identical_batches(self):
        x = nn.Tensor(np.random.default_rng(0).normal(size=(10, 4)))
        assert mmd_rbf(x, x).item() == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_shifted_distributions(self):
        rng = np.random.default_rng(1)
        x = nn.Tensor(rng.normal(0, 1, size=(20, 4)))
        y = nn.Tensor(rng.normal(5, 1, size=(20, 4)))
        assert mmd_rbf(x, y).item() > 0.1

    def test_small_for_same_distribution_samples(self):
        rng = np.random.default_rng(2)
        x = nn.Tensor(rng.normal(0, 1, size=(40, 4)))
        y = nn.Tensor(rng.normal(0, 1, size=(40, 4)))
        same = mmd_rbf(x, y).item()
        z = nn.Tensor(rng.normal(3, 1, size=(40, 4)))
        different = mmd_rbf(x, z).item()
        assert same < different

    def test_gradient_pulls_distributions_together(self):
        rng = np.random.default_rng(3)
        x = nn.Tensor(rng.normal(0, 1, size=(15, 3)), requires_grad=True)
        y = nn.Tensor(rng.normal(4, 1, size=(15, 3)))
        loss = mmd_rbf(x, y, bandwidth=10.0)
        loss.backward()
        stepped = nn.Tensor(x.data - 2.0 * x.grad)
        assert mmd_rbf(stepped, y, bandwidth=10.0).item() < loss.item()

    def test_explicit_bandwidth(self):
        rng = np.random.default_rng(4)
        x = nn.Tensor(rng.normal(size=(8, 2)))
        y = nn.Tensor(rng.normal(size=(8, 2)))
        a = mmd_rbf(x, y, bandwidth=0.5).item()
        b = mmd_rbf(x, y, bandwidth=50.0).item()
        assert a != pytest.approx(b)


class TestMMDAlignmentInModel:
    def _config(self):
        return OmniMatchConfig(
            embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
            specific_dim=8, projection_dim=6, doc_len=12, dropout=0.0,
            vocab_size=40, alignment_method="mmd",
        )

    def test_adversary_uses_mmd_path(self):
        cfg = self._config()
        rng = np.random.default_rng(0)
        adv = DomainAdversary(cfg, rng)
        adv.eval()
        s = nn.Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        t = nn.Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        spec = nn.Tensor(np.zeros((6, 8)))
        loss = adv(s, t, spec, spec)
        loss.backward()
        # with MMD there is no gradient reversal: pushing along -grad must
        # reduce the loss (pure minimization, no min-max)
        s2 = nn.Tensor(s.data - 0.5 * s.grad, requires_grad=True)
        t2 = nn.Tensor(t.data - 0.5 * t.grad, requires_grad=True)
        assert adv(s2, t2, spec, spec).item() <= loss.item() + 1e-6

    def test_full_model_trains_with_mmd(self):
        cfg = self._config()
        table = np.random.default_rng(0).normal(0, 0.1, size=(40, 16))
        table[0] = 0.0
        model = OmniMatchModel(table, cfg, np.random.default_rng(1))
        rng = np.random.default_rng(2)
        losses = model.compute_losses(
            rng.integers(1, 40, size=(6, 12)),
            rng.integers(1, 40, size=(6, 12)),
            rng.integers(1, 40, size=(6, 12)),
            rng.integers(0, 5, size=6),
        )
        losses["total"].backward()
        assert np.isfinite(losses["domain"].item())

    def test_invalid_method_rejected(self):
        with pytest.raises(ValueError):
            OmniMatchConfig(alignment_method="wasserstein")
