"""Unit tests for OmniMatch's extractors, contrastive, and adversarial modules."""

import numpy as np
import pytest

import repro.nn as nn
from repro.core import OmniMatchConfig
from repro.core.adversarial import DomainAdversary
from repro.core.contrastive import ContrastiveModule
from repro.core.extractors import DocumentEncoder, ItemFeatureExtractor, UserFeatureExtractor


def small_config(**overrides):
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=12, dropout=0.0)
    base.update(overrides)
    return OmniMatchConfig(**base)


@pytest.fixture()
def embedding():
    rng = np.random.default_rng(0)
    return nn.Embedding(30, 16, rng=rng, trainable=False, padding_idx=0)


@pytest.fixture()
def tokens():
    return np.random.default_rng(1).integers(1, 30, size=(5, 12))


class TestDocumentEncoder:
    def test_cnn_output_dim(self, embedding):
        enc = DocumentEncoder(embedding, small_config(), np.random.default_rng(0))
        # max_mean pooling doubles: 4 filters * 2 kernels * 2 pools
        assert enc.output_dim == 16

    def test_cnn_forward_shape(self, embedding, tokens):
        enc = DocumentEncoder(embedding, small_config(), np.random.default_rng(0))
        assert enc(tokens).shape == (5, enc.output_dim)

    def test_transformer_variant(self, embedding, tokens):
        cfg = small_config(extractor="transformer", transformer_heads=2,
                           transformer_layers=1)
        enc = DocumentEncoder(embedding, cfg, np.random.default_rng(0))
        enc.eval()
        assert enc(tokens).shape == (5, 16)

    def test_padding_does_not_dominate(self, embedding):
        cfg = small_config(pooling="mean")
        enc = DocumentEncoder(embedding, cfg, np.random.default_rng(0))
        short = np.zeros((1, 12), dtype=np.int64)
        short[0, :4] = [3, 4, 5, 6]
        long = np.zeros((1, 12), dtype=np.int64)
        long[0, :] = list(short[0, :4]) * 3
        out_short = enc(short).data
        out_long = enc(long).data
        # masked mean pooling: repeated content gives (nearly) the same stats
        assert np.abs(out_short - out_long).mean() < np.abs(out_long).mean()


class TestUserFeatureExtractor:
    def test_invariant_head_is_shared(self, embedding):
        ext = UserFeatureExtractor(embedding, small_config(), np.random.default_rng(0))
        # one invariant head object serves both domains: perturbing it changes both
        ids = np.random.default_rng(2).integers(1, 30, size=(2, 12))
        src_before = ext.extract_source(ids)[0].data.copy()
        tgt_before = ext.extract_target(ids)[0].data.copy()
        ext.invariant_head.weight.data += 1.0
        assert not np.allclose(ext.extract_source(ids)[0].data, src_before)
        assert not np.allclose(ext.extract_target(ids)[0].data, tgt_before)

    def test_specific_heads_are_private(self, embedding):
        ext = UserFeatureExtractor(embedding, small_config(), np.random.default_rng(0))
        ids = np.random.default_rng(2).integers(1, 30, size=(2, 12))
        tgt_before = ext.extract_target(ids)[1].data.copy()
        ext.source_specific_head.weight.data += 1.0
        np.testing.assert_allclose(ext.extract_target(ids)[1].data, tgt_before)

    def test_encoders_are_private_per_domain(self, embedding):
        ext = UserFeatureExtractor(embedding, small_config(), np.random.default_rng(0))
        ids = np.random.default_rng(2).integers(1, 30, size=(2, 12))
        assert not np.allclose(
            ext.extract_source(ids)[0].data, ext.extract_target(ids)[0].data
        )

    def test_combine_concatenates(self):
        inv = nn.Tensor(np.ones((2, 3)))
        spec = nn.Tensor(np.zeros((2, 4)))
        out = UserFeatureExtractor.combine(inv, spec)
        assert out.shape == (2, 7)

    def test_representation_dim(self, embedding):
        ext = UserFeatureExtractor(embedding, small_config(), np.random.default_rng(0))
        assert ext.representation_dim == 16


class TestItemFeatureExtractor:
    def test_output_shape(self, embedding, tokens):
        ext = ItemFeatureExtractor(embedding, small_config(), np.random.default_rng(0))
        assert ext(tokens).shape == (5, 8)


class TestContrastiveModule:
    def test_loss_scalar_and_finite(self, embedding):
        cfg = small_config()
        rng = np.random.default_rng(0)
        module = ContrastiveModule(pair_dim=16 + 8, config=cfg, rng=rng)
        src = nn.Tensor(rng.normal(size=(6, 16)))
        tgt = nn.Tensor(rng.normal(size=(6, 16)))
        item = nn.Tensor(rng.normal(size=(6, 8)))
        loss = module(src, tgt, item, np.array([0, 1, 2, 0, 1, 2]))
        assert loss.size == 1
        assert np.isfinite(loss.item())

    def test_training_projection_reduces_loss(self):
        """Gradient steps on the projection head must reduce the SupCon loss."""
        cfg = small_config()
        rng = np.random.default_rng(0)
        module = ContrastiveModule(pair_dim=24, config=cfg, rng=rng)
        item = nn.Tensor(rng.normal(size=(8, 8)))
        labels = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        src = nn.Tensor(rng.normal(size=(8, 16)))
        tgt = nn.Tensor(rng.normal(size=(8, 16)))
        optimizer = nn.Adam(module.parameters(), lr=1e-2)
        first = None
        for _ in range(40):
            optimizer.zero_grad()
            loss = module(src, tgt, item, labels)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first

    def test_project_pairs_shape(self):
        cfg = small_config()
        rng = np.random.default_rng(0)
        module = ContrastiveModule(pair_dim=24, config=cfg, rng=rng)
        out = module.project_pairs(nn.Tensor(rng.normal(size=(4, 16))),
                                   nn.Tensor(rng.normal(size=(4, 8))))
        assert out.shape == (4, cfg.projection_dim)


class TestDomainAdversary:
    def test_loss_finite(self):
        cfg = small_config()
        rng = np.random.default_rng(0)
        adv = DomainAdversary(cfg, rng)
        s_inv = nn.Tensor(rng.normal(size=(4, 8)))
        t_inv = nn.Tensor(rng.normal(size=(4, 8)))
        s_spec = nn.Tensor(rng.normal(size=(4, 8)))
        t_spec = nn.Tensor(rng.normal(size=(4, 8)))
        assert np.isfinite(adv(s_inv, t_inv, s_spec, t_spec).item())

    def test_grl_reverses_feature_gradients(self):
        """Gradients w.r.t. invariant features must push *toward* confusion:
        train the classifier briefly, then check the feature gradient points
        opposite to what would reduce the classification loss."""
        cfg = small_config(grl_lambda=1.0)
        rng = np.random.default_rng(0)
        adv = DomainAdversary(cfg, rng)
        adv.eval()  # no dropout noise
        s_inv = nn.Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        t_inv = nn.Tensor(rng.normal(size=(8, 8)) + 3.0, requires_grad=True)
        s_spec = nn.Tensor(np.zeros((8, 8)))
        t_spec = nn.Tensor(np.zeros((8, 8)))
        loss = adv(s_inv, t_inv, s_spec, t_spec)
        loss.backward()
        grad_via_grl = s_inv.grad.copy()

        # same forward WITHOUT GRL: gradient through the plain classifier
        logits = adv.invariant_classifier(nn.Tensor(s_inv.data))
        plain_in = nn.Tensor(s_inv.data, requires_grad=True)
        plain_logits = adv.invariant_classifier(plain_in)
        nn.cross_entropy(plain_logits, np.zeros(8, dtype=np.int64)).backward()
        # GRL gradient must be anti-parallel to the plain gradient
        dot = (grad_via_grl * plain_in.grad).sum()
        assert dot < 0

    def test_specific_path_not_reversed(self):
        cfg = small_config(grl_lambda=1.0)
        rng = np.random.default_rng(0)
        adv = DomainAdversary(cfg, rng)
        adv.eval()
        s_spec = nn.Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        t_spec = nn.Tensor(rng.normal(size=(8, 8)), requires_grad=True)
        loss = adv(nn.Tensor(np.zeros((8, 8))), nn.Tensor(np.zeros((8, 8))),
                   s_spec, t_spec)
        loss.backward()

        plain_in = nn.Tensor(s_spec.data, requires_grad=True)
        nn.cross_entropy(
            adv.specific_classifier(plain_in), np.zeros(8, dtype=np.int64)
        ).backward()
        dot = (s_spec.grad * plain_in.grad).sum()
        assert dot > 0  # same direction: not reversed

    def test_domain_accuracy_range(self):
        cfg = small_config()
        rng = np.random.default_rng(0)
        adv = DomainAdversary(cfg, rng)
        features = nn.Tensor(rng.normal(size=(10, 8)))
        acc = adv.domain_accuracy(features, np.zeros(10, dtype=np.int64))
        assert 0.0 <= acc <= 1.0
