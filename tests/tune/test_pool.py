"""TaskPool: inline/worker parity, cancellation, preemption, chaos requeue."""

import os
import threading
import time

import pytest

from repro.faults import WorkerKillPlan
from repro.obs import merge_shards, read_events, validate_run_file
from repro.parallel import TaskPool, TaskPoolError


# ---------------------------------------------------------------------------
# Module-level task functions (pickled by reference into workers).
# ---------------------------------------------------------------------------
def double(ctx, value):
    return 2 * value


def coordinates(ctx):
    return {"index": ctx.index, "attempt": ctx.attempt, "worker": ctx.worker,
            "generation": ctx.generation}


def boom(ctx):
    raise ValueError("deliberate task failure")


def touch_and_return(ctx, path):
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(f"{ctx.index}\n")
    return ctx.index


def wait_for_cancel(ctx, started_path, deadline=15.0):
    """Announce start, then poll ``should_stop`` — the cooperative idiom."""
    with open(started_path, "w", encoding="utf-8") as handle:
        handle.write(str(ctx.index))
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if ctx.should_stop():
            return "stopped"
        time.sleep(0.01)
    return "timeout"


def die_on_cancel(ctx, started_path, deadline=15.0):
    """Crash abruptly once cancelled: death-is-the-cancellation path."""
    with open(started_path, "w", encoding="utf-8") as handle:
        handle.write(str(ctx.index))
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if ctx.should_stop():
            os._exit(117)
        time.sleep(0.01)
    return "timeout"


def observe_stop(ctx):
    return bool(ctx.should_stop())


def _cancel_when_started(pool, index, started_path):
    """Background thread: wait for the task to announce itself, then cancel."""

    def run():
        while not os.path.exists(started_path):
            time.sleep(0.01)
        pool.cancel(index)

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread


class TestInlineMode:
    def test_submission_order_and_values(self, tmp_path):
        log = tmp_path / "order.log"
        with TaskPool(0) as pool:
            indices = [pool.submit(touch_and_return, str(log)) for _ in range(4)]
            outcomes = pool.drain()
        assert [outcomes[i].value for i in indices] == indices
        assert log.read_text().splitlines() == [str(i) for i in indices]
        assert all(outcomes[i].status == "ok" for i in indices)

    def test_cancel_pending_never_runs(self, tmp_path):
        log = tmp_path / "order.log"
        with TaskPool(0) as pool:
            first = pool.submit(touch_and_return, str(log))
            second = pool.submit(touch_and_return, str(log))
            assert pool.cancel(second) == "cancelled"
            outcomes = pool.drain()
        assert outcomes[first].status == "ok"
        assert outcomes[second].status == "cancelled"
        assert outcomes[second].cancel_requested
        assert log.read_text().splitlines() == [str(first)]

    def test_error_raises_on_drain(self):
        with TaskPool(0) as pool:
            pool.submit(boom)
            with pytest.raises(TaskPoolError, match="deliberate task failure"):
                pool.drain()

    def test_error_collected_without_raise(self):
        with TaskPool(0) as pool:
            good = pool.submit(double, 4)
            bad = pool.submit(boom)
            outcomes = pool.drain(raise_on_error=False)
        assert outcomes[good].value == 8
        assert outcomes[bad].status == "error"
        assert "deliberate task failure" in outcomes[bad].error

    def test_cancel_statuses(self):
        with TaskPool(0) as pool:
            index = pool.submit(double, 1)
            assert pool.cancel(999) == "unknown"
            pool.drain()
            assert pool.cancel(index) == "done"

    def test_inline_never_stops(self):
        with TaskPool(0) as pool:
            index = pool.submit(observe_stop)
            assert pool.drain()[index].value is False

    def test_closed_pool_rejects_submit(self):
        pool = TaskPool(0)
        pool.close()
        with pytest.raises(TaskPoolError, match="closed"):
            pool.submit(double, 1)

    def test_inline_telemetry_merges_like_workers(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        with TaskPool(0, telemetry_dir=telemetry) as pool:
            pool.submit(double, 3)
            pool.drain()
        merge_shards(telemetry)
        stats = validate_run_file(telemetry / "run.jsonl")
        assert stats["kinds"]["pool_task"] == 1


class TestWorkerMode:
    def test_values_match_inline(self):
        with TaskPool(0) as inline:
            inline_indices = [inline.submit(double, v) for v in (1, 2, 3, 4, 5)]
            inline_outcomes = inline.drain()
            expected = [inline_outcomes[i].value for i in inline_indices]
        with TaskPool(2) as pool:
            indices = [pool.submit(double, v) for v in (1, 2, 3, 4, 5)]
            outcomes = pool.drain()
        assert [outcomes[i].value for i in indices] == expected

    def test_shards_schema_valid(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        with TaskPool(2, telemetry_dir=telemetry) as pool:
            for value in range(4):
                pool.submit(double, value)
            pool.drain()
        merge_shards(telemetry)
        stats = validate_run_file(telemetry / "run.jsonl")
        assert stats["kinds"]["pool_task"] == 4
        assert stats["kinds"]["worker_start"] == 2
        assert stats["kinds"]["worker_end"] == 2

    def test_cooperative_cancel_of_running_task(self, tmp_path):
        started = tmp_path / "started"
        with TaskPool(2) as pool:
            index = pool.submit(wait_for_cancel, str(started))
            thread = _cancel_when_started(pool, index, str(started))
            outcomes = pool.drain()
            thread.join(timeout=5)
        # A cooperative stop returns normally — the caller sees both the
        # result and the fact that cancellation was requested.
        assert outcomes[index].status == "ok"
        assert outcomes[index].value == "stopped"
        assert outcomes[index].cancel_requested

    def test_death_with_cancel_pending_is_cancellation(self, tmp_path):
        started = tmp_path / "started"
        with TaskPool(2) as pool:
            index = pool.submit(die_on_cancel, str(started))
            thread = _cancel_when_started(pool, index, str(started))
            outcomes = pool.drain()
            thread.join(timeout=5)
        assert outcomes[index].status == "cancelled"
        assert outcomes[index].cancel_requested

    def test_stale_cancel_never_leaks_to_next_task(self, tmp_path):
        started = tmp_path / "started"
        with TaskPool(2) as pool:
            preempted = pool.submit(wait_for_cancel, str(started))
            thread = _cancel_when_started(pool, preempted, str(started))
            pool.drain()
            thread.join(timeout=5)
            # New tasks after the cancel must see a clean should_stop.
            followers = [pool.submit(observe_stop) for _ in range(4)]
            outcomes = pool.drain()
        assert [outcomes[i].value for i in followers] == [False] * 4

    def test_worker_death_requeues_task(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        plan = WorkerKillPlan(kills=[(2, 0)])  # kill task 2's first attempt
        with TaskPool(2, telemetry_dir=telemetry, kill_plan=plan) as pool:
            indices = [pool.submit(double, v) for v in range(5)]
            outcomes = pool.drain()
        assert [outcomes[i].value for i in indices] == [0, 2, 4, 6, 8]
        assert outcomes[2].attempt == 1  # reran on the replacement worker
        merge_shards(telemetry)
        events = read_events(telemetry / "run.jsonl")
        generations = {e["generation"] for e in events if e["kind"] == "worker_start"}
        assert generations == {0, 1}  # a replacement worker was spawned

    def test_retry_budget_exhausted(self):
        plan = WorkerKillPlan(kills=[(0, 0), (0, 1)])
        with TaskPool(2, max_task_retries=1, kill_plan=plan) as pool:
            pool.submit(double, 1)
            with pytest.raises(TaskPoolError, match="giving up"):
                pool.drain()
