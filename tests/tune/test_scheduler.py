"""Successive-halving budget ladders and rung decisions."""

import math

import pytest

from repro.tune import GridScheduler, SuccessiveHalving, make_scheduler


class TestBudgetLadder:
    @pytest.mark.parametrize(
        "min_epochs,max_epochs,eta,expected",
        [
            (1, 9, 3, (1, 3, 9)),
            (1, 4, 2, (1, 2, 4)),
            (2, 20, 3, (2, 6, 18, 20)),
            (5, 5, 3, (5,)),
            (1, 2, 3, (1, 2)),
        ],
    )
    def test_ladder(self, min_epochs, max_epochs, eta, expected):
        sched = SuccessiveHalving(min_epochs, max_epochs, eta)
        assert sched.budgets == expected
        assert sched.num_rungs == len(expected)

    def test_budgets_strictly_increase(self):
        budgets = SuccessiveHalving(1, 40, 3).budgets
        assert all(a < b for a, b in zip(budgets, budgets[1:]))
        assert budgets[-1] == 40

    @pytest.mark.parametrize(
        "kwargs", [dict(min_epochs=0), dict(min_epochs=4, max_epochs=2), dict(eta=1)]
    )
    def test_bad_parameters(self, kwargs):
        with pytest.raises(ValueError):
            SuccessiveHalving(**{"min_epochs": 1, "max_epochs": 9, "eta": 3, **kwargs})


class TestDecide:
    def test_promotes_top_fraction(self):
        sched = SuccessiveHalving(1, 9, 3)
        scores = {i: 1.0 + 0.1 * i for i in range(9)}
        decision = sched.decide(0, scores)
        assert decision.ranked == tuple(range(9))
        assert decision.promoted == (0, 1, 2)
        assert decision.killed == tuple(range(3, 9))

    def test_always_keeps_at_least_one(self):
        sched = SuccessiveHalving(1, 9, 3)
        decision = sched.decide(0, {7: 1.5, 3: 1.2})
        assert decision.promoted == (3,)
        assert decision.killed == (7,)

    def test_final_rung_kills_nothing(self):
        sched = SuccessiveHalving(1, 9, 3)
        decision = sched.decide(sched.num_rungs - 1, {0: 1.0, 1: 2.0})
        assert decision.promoted == ()
        assert decision.killed == ()
        assert decision.ranked[0] == 0

    def test_ties_break_by_trial_id(self):
        sched = SuccessiveHalving(1, 9, 3)
        decision = sched.decide(0, {5: 1.0, 2: 1.0, 8: 1.0})
        assert decision.ranked == (2, 5, 8)

    def test_nan_ranks_last(self):
        sched = SuccessiveHalving(1, 9, 3)
        decision = sched.decide(0, {0: math.nan, 1: 9.9, 2: None})
        assert decision.ranked == (1, 0, 2)
        assert decision.promoted == (1,)

    def test_out_of_range_rung(self):
        sched = SuccessiveHalving(1, 9, 3)
        with pytest.raises(ValueError, match="out of range"):
            sched.decide(sched.num_rungs, {0: 1.0})

    def test_empty_scores(self):
        with pytest.raises(ValueError, match="no trial scores"):
            SuccessiveHalving(1, 9, 3).decide(0, {})


class TestGridScheduler:
    def test_single_full_budget_rung(self):
        sched = GridScheduler(max_epochs=7)
        assert sched.budgets == (7,)
        decision = sched.decide(0, {0: 2.0, 1: 1.0})
        assert decision.ranked == (1, 0)
        assert decision.promoted == () and decision.killed == ()
        with pytest.raises(ValueError, match="one rung"):
            sched.decide(1, {0: 1.0})


class TestMakeScheduler:
    def test_by_name(self):
        assert isinstance(make_scheduler("asha", min_epochs=1, max_epochs=9, eta=3),
                          SuccessiveHalving)
        assert isinstance(make_scheduler("grid", min_epochs=1, max_epochs=9, eta=3),
                          GridScheduler)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("hyperband", min_epochs=1, max_epochs=9, eta=3)

    def test_describe_is_jsonable(self):
        import json

        for name in ("asha", "grid"):
            sched = make_scheduler(name, min_epochs=1, max_epochs=9, eta=3)
            assert json.loads(json.dumps(sched.describe()))["name"] == name
