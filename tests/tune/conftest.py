"""Shared fixtures for the tuner suite: one tiny world, one tiny config."""

import pytest

from repro.data import generate_scenario

WORLD_PARAMS = dict(
    num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0, seed=11
)


@pytest.fixture(scope="session")
def world():
    return generate_scenario("amazon", "books", "movies", **WORLD_PARAMS)
