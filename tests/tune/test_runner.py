"""End-to-end tuner: determinism, resume-no-recompute, chaos, artifacts."""

import json

import pytest

from repro.faults import WorkerKillPlan
from repro.obs import read_events, validate_run_file
from repro.tune import SearchSpaceError, TuneError, run_tuning, trained_epoch_census

from .helpers import tiny_config

SPEC = {
    "learning_rate": {"grid": [0.4, 1.0, 1.6]},
    "alpha": {"uniform": [0.05, 0.3]},
}

TUNE_KWARGS = dict(
    seed=3, num_samples=1, scheduler="asha", min_epochs=1, max_epochs=2,
    eta=2, split_seed=1,
)


def tune(world, out_dir, **overrides):
    kwargs = dict(TUNE_KWARGS, **overrides)
    return run_tuning(
        SPEC, base_config=tiny_config(), dataset=world, out_dir=out_dir,
        **kwargs,
    )


class TestDeterminism:
    def test_same_seed_byte_identical_artifact(self, world, tmp_path):
        first = tune(world, tmp_path / "a")
        second = tune(world, tmp_path / "b")
        assert first.artifact_path.read_bytes() == second.artifact_path.read_bytes()
        assert first.best_trial == second.best_trial
        assert first.best_rmse == second.best_rmse

    def test_workers_match_inline_byte_for_byte(self, world, tmp_path):
        inline = tune(world, tmp_path / "inline", workers=0)
        pooled = tune(world, tmp_path / "pool", workers=2)
        assert inline.artifact_path.read_bytes() == pooled.artifact_path.read_bytes()

    def test_different_seed_changes_sampled_params(self, world, tmp_path):
        a = tune(world, tmp_path / "a")
        b = tune(world, tmp_path / "b", seed=4)
        params_a = json.loads(a.artifact_path.read_text())["trials"][0]["params"]
        params_b = json.loads(b.artifact_path.read_text())["trials"][0]["params"]
        assert params_a["alpha"] != params_b["alpha"]


class TestSchedule:
    def test_asha_kills_and_promotes(self, world, tmp_path):
        result = tune(world, tmp_path / "t")
        assert [d.budget for d in result.rungs] == [1, 2]
        rung0 = result.rungs[0]
        assert len(rung0.ranked) == 3
        assert len(rung0.promoted) == 1
        assert len(rung0.killed) == 2
        assert result.best_trial == rung0.promoted[0]

    def test_best_is_min_rmse_of_final_rung(self, world, tmp_path):
        result = tune(world, tmp_path / "t")
        artifact = json.loads(result.artifact_path.read_text())
        final_scores = artifact["trials"][result.best_trial]["rungs"]
        assert artifact["best"]["valid_rmse"] == final_scores["1"]
        killed = [t["killed_at_rung"] for t in artifact["trials"]]
        assert killed.count(0) == 2 and killed.count(None) == 1

    def test_grid_trains_every_trial_to_full_budget(self, world, tmp_path):
        result = tune(world, tmp_path / "t", scheduler="grid")
        assert [d.budget for d in result.rungs] == [2]
        assert result.rungs[0].killed == ()
        assert result.total_epochs == 3 * 2


class TestResume:
    def test_promoted_trial_resumes_instead_of_recomputing(self, world, tmp_path):
        result = tune(world, tmp_path / "t")
        total, duplicates = trained_epoch_census(result.telemetry_dir)
        # 3 trials x 1 epoch at rung 0, + 1 marginal epoch for the winner.
        assert total == result.total_epochs == 4
        assert duplicates == 0
        events = read_events(result.telemetry_dir / "run.jsonl")
        resumes = [e for e in events
                   if e["kind"] == "health" and e.get("health_kind") == "resume"]
        assert len(resumes) == 1  # exactly one promotion, exactly one resume
        assert resumes[0]["trial"] == result.best_trial

    def test_winner_checkpoint_on_disk(self, world, tmp_path):
        result = tune(world, tmp_path / "t")
        trial_dir = tmp_path / "t" / "trials" / f"trial-{result.best_trial:04d}"
        assert (trial_dir / "epoch-0002").is_dir()


class TestTelemetry:
    def test_merged_stream_schema_valid(self, world, tmp_path):
        result = tune(world, tmp_path / "t", workers=2)
        stats = validate_run_file(result.telemetry_dir / "run.jsonl")
        assert stats["kinds"]["tune_trial"] == 3 + 4  # defined + per-rung results
        assert stats["kinds"]["tune_rung"] == 2
        assert stats["kinds"]["tune_result"] == 1

    def test_scheduler_input_is_the_event_stream(self, world, tmp_path):
        result = tune(world, tmp_path / "t")
        events = read_events(result.telemetry_dir / "run.jsonl")
        rung0 = next(e for e in events if e["kind"] == "tune_rung" and e["rung"] == 0)
        done = {e["trial"]: e["valid_rmse"] for e in events
                if e["kind"] == "tune_trial" and e["rung"] == 0
                and e["status"] == "done"}
        assert rung0["scores"] == {str(t): r for t, r in done.items()}


class TestChaos:
    def test_worker_death_mid_tune_same_artifact(self, world, tmp_path):
        clean = tune(world, tmp_path / "clean", workers=2)
        chaotic = tune(
            world, tmp_path / "chaos", workers=2,
            kill_plan=WorkerKillPlan(kills=[(1, 0)]),
        )
        assert clean.artifact_path.read_bytes() == chaotic.artifact_path.read_bytes()
        _, duplicates = trained_epoch_census(chaotic.telemetry_dir)
        assert duplicates == 0


class TestValidation:
    def test_bad_space_raises(self, world, tmp_path):
        with pytest.raises(SearchSpaceError):
            run_tuning({"epochs": {"grid": [3]}}, dataset=world,
                       out_dir=tmp_path / "t")

    def test_missing_scores_raise_tune_error(self, tmp_path):
        from repro.tune.runner import _rung_scores

        with pytest.raises(TuneError, match="cannot rank"):
            _rung_scores(tmp_path, 0, [0, 1])
