"""Tiny model config shared by the tuner tests."""

from repro.core import OmniMatchConfig


def tiny_config(**overrides) -> OmniMatchConfig:
    """Smallest model that still trains: keeps tuner tests sub-second."""
    base = dict(
        embed_dim=12, num_filters=3, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=16, dropout=0.2,
        vocab_size=200, batch_size=32, seed=7,
    )
    base.update(overrides)
    return OmniMatchConfig(**base)
