"""Search-space parsing, validation, and deterministic trial enumeration."""

import pytest

from repro.core import OmniMatchConfig
from repro.tune import SearchSpaceError, enumerate_trials, parse_space


class TestParseSpace:
    def test_valid_spec_round_trips(self):
        parsed = parse_space(
            {
                "learning_rate": {"log_uniform": [0.05, 2.0]},
                "alpha": {"grid": [0.1, 0.2]},
                "dropout": {"choice": [0.1, 0.3]},
                "beta": {"uniform": [0.01, 0.1]},
            }
        )
        assert parsed["alpha"] == ("grid", (0.1, 0.2))
        assert parsed["learning_rate"] == ("log_uniform", (0.05, 2.0))
        assert parsed["dropout"][0] == "choice"
        assert parsed["beta"] == ("uniform", (0.01, 0.1))

    def test_empty_space_rejected(self):
        with pytest.raises(SearchSpaceError, match="non-empty"):
            parse_space({})

    def test_unknown_field_rejected(self):
        with pytest.raises(SearchSpaceError, match="unknown config field"):
            parse_space({"not_a_field": {"grid": [1]}})

    @pytest.mark.parametrize("field", ["epochs", "early_stopping", "patience"])
    def test_reserved_fields_rejected(self, field):
        with pytest.raises(SearchSpaceError, match="owned by the tuner"):
            parse_space({field: {"grid": [1]}})

    def test_unknown_distribution_rejected(self):
        with pytest.raises(SearchSpaceError, match="unknown distribution"):
            parse_space({"alpha": {"gaussian": [0, 1]}})

    def test_multi_key_entry_rejected(self):
        with pytest.raises(SearchSpaceError, match="one-key mapping"):
            parse_space({"alpha": {"grid": [0.1], "choice": [0.2]}})

    def test_empty_grid_rejected(self):
        with pytest.raises(SearchSpaceError, match="at least one value"):
            parse_space({"alpha": {"grid": []}})

    def test_bad_range_rejected(self):
        with pytest.raises(SearchSpaceError, match="low < high"):
            parse_space({"alpha": {"uniform": [0.5, 0.1]}})

    def test_log_uniform_needs_positive_low(self):
        with pytest.raises(SearchSpaceError, match="low > 0"):
            parse_space({"learning_rate": {"log_uniform": [0.0, 1.0]}})


class TestEnumerateTrials:
    SPEC = {
        "learning_rate": {"log_uniform": [0.1, 2.0]},
        "alpha": {"grid": [0.1, 0.2, 0.3]},
    }

    def test_grid_crossed_with_samples(self):
        trials = enumerate_trials(self.SPEC, seed=5, num_samples=2)
        assert len(trials) == 6  # 3 grid points x 2 joint draws
        assert [t.trial_id for t in trials] == list(range(6))

    def test_same_seed_same_trials(self):
        a = enumerate_trials(self.SPEC, seed=5, num_samples=2)
        b = enumerate_trials(self.SPEC, seed=5, num_samples=2)
        assert [t.params for t in a] == [t.params for t in b]
        assert [t.config for t in a] == [t.config for t in b]

    def test_different_seed_different_draws(self):
        a = enumerate_trials(self.SPEC, seed=5)
        b = enumerate_trials(self.SPEC, seed=6)
        assert [t.params for t in a] != [t.params for t in b]

    def test_pure_grid_ignores_num_samples(self):
        trials = enumerate_trials(
            {"alpha": {"grid": [0.1, 0.2]}}, seed=0, num_samples=7
        )
        assert len(trials) == 2

    def test_scheduler_owns_stopping(self):
        trials = enumerate_trials(self.SPEC, seed=0, max_epochs=9)
        for trial in trials:
            assert trial.config.early_stopping is False
            assert trial.config.epochs == 9

    def test_base_config_fields_survive(self):
        base = OmniMatchConfig(embed_dim=12, num_filters=3, seed=99)
        trials = enumerate_trials(self.SPEC, base, seed=0)
        for trial in trials:
            assert trial.config.embed_dim == 12
            assert trial.config.seed == 99

    def test_params_recorded_sorted(self):
        trials = enumerate_trials(self.SPEC, seed=0)
        for trial in trials:
            names = [name for name, _ in trial.params]
            assert names == sorted(names) == ["alpha", "learning_rate"]
            assert trial.config.alpha == dict(trial.params)["alpha"]

    def test_invalid_assignment_is_space_error(self):
        with pytest.raises(SearchSpaceError, match="invalid assignment"):
            enumerate_trials({"aux_mix_prob": {"grid": [2.0]}}, seed=0)

    def test_bad_num_samples(self):
        with pytest.raises(SearchSpaceError, match="num_samples"):
            enumerate_trials(self.SPEC, seed=0, num_samples=0)
