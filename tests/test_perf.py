"""Unit tests for the per-phase timing registry."""

import json
import os
import time

import numpy as np
import pytest

from repro.faults import SimulatedCrash
from repro.perf import PerfRegistry, throughput, write_report


class TestPerfRegistry:
    def test_section_accumulates(self):
        registry = PerfRegistry()
        with registry.section("work"):
            pass
        with registry.section("work"):
            pass
        summary = registry.summary()
        assert summary["work"]["calls"] == 2
        assert summary["work"]["seconds"] >= 0.0

    def test_section_records_on_exception(self):
        registry = PerfRegistry()
        with pytest.raises(RuntimeError):
            with registry.section("boom"):
                raise RuntimeError
        assert registry.summary()["boom"]["calls"] == 1

    def test_record_and_seconds(self):
        registry = PerfRegistry()
        registry.record("phase", 1.5)
        registry.record("phase", 0.5)
        assert registry.seconds("phase") == pytest.approx(2.0)
        assert registry.seconds("missing") == 0.0

    def test_reset(self):
        registry = PerfRegistry()
        registry.record("phase", 1.0)
        registry.reset()
        assert registry.summary() == {}

    def test_nested_same_name_does_not_double_count(self):
        """Re-entrant sections of one name must accumulate wall-clock once.

        A recursive helper wrapped in ``section("work")`` used to add the
        inner call's time on top of the outer measurement that already
        contains it, inflating the phase total ~2x per nesting level.
        """
        registry = PerfRegistry()
        with registry.section("work"):
            with registry.section("work"):
                time.sleep(0.02)
        summary = registry.summary()
        assert summary["work"]["calls"] == 2
        # Double-counting would report >= 0.04s here.
        assert summary["work"]["seconds"] < 0.035

    def test_nested_same_name_survives_inner_exception(self):
        registry = PerfRegistry()
        with pytest.raises(ValueError):
            with registry.section("work"):
                with registry.section("work"):
                    raise ValueError
        # Depth unwound: a fresh outermost section accumulates again.
        before = registry.seconds("work")
        with registry.section("work"):
            time.sleep(0.005)
        assert registry.seconds("work") > before

    def test_distinct_names_still_both_accumulate(self):
        registry = PerfRegistry()
        with registry.section("outer"):
            with registry.section("inner"):
                pass
        assert registry.seconds("outer") >= registry.seconds("inner") >= 0.0
        assert registry.summary()["inner"]["calls"] == 1

    def test_record_then_reset_then_record(self):
        registry = PerfRegistry()
        registry.record("phase", 1.0)
        registry.reset()
        registry.record("phase", 0.25)
        summary = registry.summary()
        assert summary["phase"]["seconds"] == pytest.approx(0.25)
        assert summary["phase"]["calls"] == 1

    def test_record_mixes_with_section(self):
        registry = PerfRegistry()
        with registry.section("phase"):
            pass
        registry.record("phase", 1.0)
        summary = registry.summary()
        assert summary["phase"]["calls"] == 2
        assert summary["phase"]["seconds"] >= 1.0

    def test_trainer_populates_sections(self):
        from repro.core import OmniMatchConfig, OmniMatchTrainer
        from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

        dataset = generate_domain_pair(
            "books", "movies",
            GeneratorConfig(num_users=60, num_items_per_domain=30,
                            reviews_per_user_mean=4.0, seed=3),
        )
        split = cold_start_split(dataset, seed=0)
        config = OmniMatchConfig(
            embed_dim=12, num_filters=4, kernel_sizes=(2,), invariant_dim=8,
            specific_dim=8, projection_dim=6, doc_len=16, vocab_size=200,
            epochs=1, early_stopping=False,
        )
        trainer = OmniMatchTrainer(dataset, split, config)
        trainer.fit()
        summary = trainer.perf.summary()
        for phase in ("batch_assembly", "forward", "backward", "optimizer"):
            assert phase in summary, phase
            assert summary[phase]["calls"] >= 1


class TestReporting:
    def test_throughput(self):
        assert throughput(100, 2.0) == pytest.approx(50.0)
        assert throughput(100, 0.0) == 0.0

    def test_throughput_negative_elapsed(self):
        """Clock skew (negative elapsed) reports 0, not a negative rate."""
        assert throughput(100, -1.0) == 0.0
        assert throughput(0, 0.0) == 0.0
        assert throughput(0, 5.0) == 0.0

    def test_write_report(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(path, {"samples_per_sec": np.float64(12.5).item()})
        assert json.loads(path.read_text())["samples_per_sec"] == 12.5

    def test_write_report_crash_preserves_old_report(self, tmp_path, monkeypatch):
        """A crash mid-write must never truncate the previous report.

        The old implementation opened ``path`` with ``"w"`` (truncating it
        immediately); a crash before the dump finished lost the previous
        benchmark trajectory. The atomic path writes a temp file and only
        renames on success — simulate the crash at the rename and check the
        original survives byte-for-byte.
        """
        path = tmp_path / "BENCH_throughput.json"
        write_report(path, {"run": 1})
        original = path.read_bytes()

        real_replace = os.replace

        def crashing_replace(src, dst, *args, **kwargs):
            if str(dst) == str(path):
                raise SimulatedCrash("killed mid-rename")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(SimulatedCrash):
            write_report(path, {"run": 2})
        assert path.read_bytes() == original

    def test_write_report_unserializable_payload_preserves_old(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(path, {"run": 1})
        original = path.read_bytes()
        with pytest.raises(TypeError):
            write_report(path, {"bad": object()})
        assert path.read_bytes() == original
