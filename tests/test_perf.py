"""Unit tests for the per-phase timing registry."""

import json

import numpy as np
import pytest

from repro.perf import PerfRegistry, throughput, write_report


class TestPerfRegistry:
    def test_section_accumulates(self):
        registry = PerfRegistry()
        with registry.section("work"):
            pass
        with registry.section("work"):
            pass
        summary = registry.summary()
        assert summary["work"]["calls"] == 2
        assert summary["work"]["seconds"] >= 0.0

    def test_section_records_on_exception(self):
        registry = PerfRegistry()
        with pytest.raises(RuntimeError):
            with registry.section("boom"):
                raise RuntimeError
        assert registry.summary()["boom"]["calls"] == 1

    def test_record_and_seconds(self):
        registry = PerfRegistry()
        registry.record("phase", 1.5)
        registry.record("phase", 0.5)
        assert registry.seconds("phase") == pytest.approx(2.0)
        assert registry.seconds("missing") == 0.0

    def test_reset(self):
        registry = PerfRegistry()
        registry.record("phase", 1.0)
        registry.reset()
        assert registry.summary() == {}

    def test_trainer_populates_sections(self):
        from repro.core import OmniMatchConfig, OmniMatchTrainer
        from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

        dataset = generate_domain_pair(
            "books", "movies",
            GeneratorConfig(num_users=60, num_items_per_domain=30,
                            reviews_per_user_mean=4.0, seed=3),
        )
        split = cold_start_split(dataset, seed=0)
        config = OmniMatchConfig(
            embed_dim=12, num_filters=4, kernel_sizes=(2,), invariant_dim=8,
            specific_dim=8, projection_dim=6, doc_len=16, vocab_size=200,
            epochs=1, early_stopping=False,
        )
        trainer = OmniMatchTrainer(dataset, split, config)
        trainer.fit()
        summary = trainer.perf.summary()
        for phase in ("batch_assembly", "forward", "backward", "optimizer"):
            assert phase in summary, phase
            assert summary[phase]["calls"] >= 1


class TestReporting:
    def test_throughput(self):
        assert throughput(100, 2.0) == pytest.approx(50.0)
        assert throughput(100, 0.0) == 0.0

    def test_write_report(self, tmp_path):
        path = tmp_path / "bench.json"
        write_report(path, {"samples_per_sec": np.float64(12.5).item()})
        assert json.loads(path.read_text())["samples_per_sec"] == 12.5
