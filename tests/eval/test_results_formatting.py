"""Additional tests for result-table rendering."""

import pytest

from repro.eval import ExperimentResult, format_table


def cell(method, scenario_pair, rmse_value, mae_value):
    source, target = scenario_pair
    return ExperimentResult(
        method=method, dataset="amazon", source=source, target=target,
        rmse=rmse_value, mae=mae_value, trials=1,
    )


class TestFormatTable:
    def test_multi_scenario_grid(self):
        results = [
            cell("A", ("books", "movies"), 1.1, 0.9),
            cell("B", ("books", "movies"), 1.2, 1.0),
            cell("A", ("movies", "music"), 1.3, 1.1),
            cell("B", ("movies", "music"), 1.4, 1.2),
        ]
        table = format_table(results)
        lines = table.splitlines()
        assert len(lines) == 4  # header + rule + 2 scenario rows
        assert "books -> movies" in lines[2]
        assert "movies -> music" in lines[3]

    def test_mae_metric_selection(self):
        results = [cell("A", ("books", "movies"), 1.1, 0.9)]
        table_rmse = format_table(results, metric="RMSE")
        table_mae = format_table(results, metric="MAE")
        assert "1.100" in table_rmse
        assert "0.900" in table_mae

    def test_missing_cell_left_blank(self):
        results = [
            cell("A", ("books", "movies"), 1.1, 0.9),
            cell("B", ("movies", "music"), 1.4, 1.2),
        ]
        table = format_table(results)
        # both scenarios and both methods present, no crash on the holes
        assert "books -> movies" in table
        assert "movies -> music" in table

    def test_method_order_preserved(self):
        results = [
            cell("Zeta", ("books", "movies"), 1.0, 0.8),
            cell("Alpha", ("books", "movies"), 1.1, 0.9),
        ]
        header = format_table(results).splitlines()[0]
        assert header.index("Zeta") < header.index("Alpha")


class TestWriteResultsJson:
    def test_roundtrip(self, tmp_path):
        import json

        from repro.eval import write_results_json

        path = tmp_path / "results.json"
        write_results_json(path, [cell("A", ("books", "movies"), 1.1, 0.9)])
        payload = json.loads(path.read_text())
        [row] = payload["results"]
        assert row["method"] == "A"
        assert row["rmse"] == pytest.approx(1.1)

    def test_crash_mid_write_preserves_old_results(self, tmp_path, monkeypatch):
        import os

        from repro.eval import write_results_json
        from repro.faults import SimulatedCrash

        path = tmp_path / "results.json"
        write_results_json(path, [cell("A", ("books", "movies"), 1.1, 0.9)])
        original = path.read_bytes()

        real_replace = os.replace

        def crashing_replace(src, dst, *args, **kwargs):
            if str(dst) == str(path):
                raise SimulatedCrash("killed mid-rename")
            return real_replace(src, dst, *args, **kwargs)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(SimulatedCrash):
            write_results_json(path, [cell("B", ("books", "movies"), 2.0, 1.5)])
        assert path.read_bytes() == original
