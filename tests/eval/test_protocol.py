"""Tests for the experiment protocol, registry, and table formatting."""

import numpy as np
import pytest

from repro.eval import (
    METHODS,
    PAPER_METHODS,
    ExperimentResult,
    format_comparison,
    format_table,
    improvement_over_best_baseline,
    make_predictor,
    run_experiment,
)
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

SMALL = dict(num_users=90, num_items_per_domain=40, reviews_per_user_mean=5.0)


class TestRegistry:
    def test_paper_methods_all_registered(self):
        for name in PAPER_METHODS:
            assert name in METHODS

    def test_reference_methods_registered(self):
        assert "global-mean" in METHODS
        assert "item-mean" in METHODS

    def test_unknown_method_rejected(self):
        dataset = generate_domain_pair("books", "movies", GeneratorConfig(**SMALL, seed=2))
        split = cold_start_split(dataset, seed=0)
        with pytest.raises(KeyError):
            make_predictor("SVD++", dataset, split)

    def test_make_predictor_returns_fitted(self):
        dataset = generate_domain_pair("books", "movies", GeneratorConfig(**SMALL, seed=2))
        split = cold_start_split(dataset, seed=0)
        fitted = make_predictor("item-mean", dataset, split)
        test = split.eval_interactions(dataset, "test")
        assert fitted.predict_interactions(test).shape == (len(test),)


class TestRunExperiment:
    def test_result_structure(self):
        result = run_experiment(
            "item-mean", "amazon", "books", "movies", trials=2, **SMALL
        )
        assert result.method == "item-mean"
        assert result.scenario == "books -> movies"
        assert len(result.rmse_per_trial) == 2
        assert result.rmse == pytest.approx(np.mean(result.rmse_per_trial))
        assert 0 < result.rmse < 3
        assert 0 < result.mae <= result.rmse

    def test_trials_vary_split(self):
        result = run_experiment(
            "item-mean", "amazon", "books", "movies", trials=3, **SMALL
        )
        assert len(set(result.rmse_per_trial)) > 1

    def test_train_fraction_forwarded(self):
        full = run_experiment("global-mean", "amazon", "books", "movies",
                              trials=1, train_fraction=1.0, **SMALL)
        small = run_experiment("global-mean", "amazon", "books", "movies",
                               trials=1, train_fraction=0.2, **SMALL)
        assert np.isfinite(full.rmse) and np.isfinite(small.rmse)

    def test_row_rendering(self):
        result = run_experiment("item-mean", "amazon", "books", "movies",
                                trials=1, **SMALL)
        row = result.row()
        assert set(row) == {"method", "scenario", "RMSE", "MAE"}

    def test_deterministic_given_seed(self):
        a = run_experiment("item-mean", "amazon", "books", "movies",
                           trials=1, seed=5, **SMALL)
        b = run_experiment("item-mean", "amazon", "books", "movies",
                           trials=1, seed=5, **SMALL)
        assert a.rmse == b.rmse


class TestKwargRouting:
    def test_unknown_generator_override_rejected(self):
        with pytest.raises(TypeError, match="reviews_per_user_meen"):
            run_experiment("item-mean", "amazon", "books", "movies",
                           trials=1, reviews_per_user_meen=4.0)

    def test_scenario_methods_rejects_unknown_kwargs(self):
        from repro.eval import run_scenario_methods

        with pytest.raises(TypeError, match="cold_fraktion"):
            run_scenario_methods(["item-mean"], "amazon", "books", "movies",
                                 trials=1, cold_fraktion=0.5, **SMALL)

    def test_scenario_methods_routes_train_fraction_to_split(self):
        from repro.eval import run_scenario_methods

        via_sweep = run_scenario_methods(
            ["global-mean"], "amazon", "books", "movies",
            trials=1, train_fraction=0.2, **SMALL,
        )[0]
        direct = run_experiment(
            "global-mean", "amazon", "books", "movies",
            trials=1, train_fraction=0.2, **SMALL,
        )
        # Same split (train_fraction reached cold_start_split, not the
        # generator) => identical metrics.
        assert via_sweep.rmse == direct.rmse
        assert via_sweep.mae == direct.mae

    def test_explicit_dataset_with_overrides_rejected(self):
        from repro.data import GeneratorConfig, generate_domain_pair

        dataset = generate_domain_pair(
            "books", "movies", GeneratorConfig(**SMALL, seed=2)
        )
        with pytest.raises(ValueError, match="num_users"):
            run_experiment("item-mean", "amazon", "books", "movies",
                           trials=1, dataset=dataset, num_users=10)


class TestTimingAndSpread:
    def test_std_and_wall_fields(self):
        result = run_experiment("item-mean", "amazon", "books", "movies",
                                trials=3, **SMALL)
        assert result.rmse_std == pytest.approx(np.std(result.rmse_per_trial))
        assert result.mae_std == pytest.approx(np.std(result.mae_per_trial))
        # Wall clock covers fit + predict + score, so it dominates fit.
        assert result.wall_seconds >= result.fit_seconds > 0

    def test_row_timing_columns_behind_flag(self):
        result = run_experiment("item-mean", "amazon", "books", "movies",
                                trials=2, **SMALL)
        assert set(result.row()) == {"method", "scenario", "RMSE", "MAE"}
        timed = result.row(include_timing=True)
        assert {"RMSE_std", "MAE_std", "fit_s", "wall_s"} <= set(timed)

    def test_trial_offset_renumbers_seeds(self):
        both = run_experiment("item-mean", "amazon", "books", "movies",
                              trials=2, seed=3, **SMALL)
        second_only = run_experiment("item-mean", "amazon", "books", "movies",
                                     trials=1, seed=3, trial_offset=1, **SMALL)
        assert second_only.rmse_per_trial == both.rmse_per_trial[1:]


class TestResultFormatting:
    def _fake(self, method, rmse_value, mae_value):
        return ExperimentResult(
            method=method, dataset="amazon", source="books", target="movies",
            rmse=rmse_value, mae=mae_value, trials=1,
        )

    def test_format_table_contains_all(self):
        results = [self._fake("A", 1.2, 0.9), self._fake("B", 1.1, 0.8)]
        table = format_table(results)
        assert "A" in table and "B" in table and "books -> movies" in table

    def test_improvement_computation(self):
        results = [
            self._fake("OmniMatch", 0.9, 0.7),
            self._fake("EMCDR", 1.0, 0.8),
            self._fake("CMF", 1.5, 1.2),
        ]
        assert improvement_over_best_baseline(results) == pytest.approx(10.0)

    def test_improvement_requires_both_sides(self):
        with pytest.raises(ValueError):
            improvement_over_best_baseline([self._fake("OmniMatch", 1.0, 0.8)])

    def test_format_comparison_includes_delta(self):
        results = [
            self._fake("OmniMatch", 0.9, 0.7),
            self._fake("EMCDR", 1.0, 0.8),
        ]
        out = format_comparison(results)
        assert "Δ%" in out
