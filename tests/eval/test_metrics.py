"""Unit tests for evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import mae, rmse


class TestRMSE:
    def test_zero_on_perfect(self):
        assert rmse(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_known_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(
            np.sqrt((1 + 4) / 2)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestMAE:
    def test_known_value(self):
        assert mae(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(1.5)

    def test_zero_on_perfect(self):
        assert mae(np.array([4.0]), np.array([4.0])) == 0.0


class TestValidation:
    """_validate error paths: shape mismatch, empty arrays, non-finite input."""

    @pytest.mark.parametrize("metric", [rmse, mae])
    def test_shape_mismatch_names_shapes(self, metric):
        with pytest.raises(ValueError, match=r"shape mismatch.*\(2,\).*\(3,\)"):
            metric(np.ones(2), np.ones(3))

    @pytest.mark.parametrize("metric", [rmse, mae])
    def test_empty_arrays_rejected(self, metric):
        with pytest.raises(ValueError, match="zero interactions"):
            metric(np.array([]), np.array([]))

    @pytest.mark.parametrize("metric", [rmse, mae])
    def test_nan_prediction_rejected(self, metric):
        # A single NaN used to silently poison the average into a NaN score.
        with pytest.raises(ValueError, match="predictions contain non-finite"):
            metric(np.array([1.0, 2.0]), np.array([1.0, np.nan]))

    @pytest.mark.parametrize("metric", [rmse, mae])
    def test_inf_prediction_rejected(self, metric):
        with pytest.raises(ValueError, match="predictions contain non-finite"):
            metric(np.array([1.0]), np.array([np.inf]))

    @pytest.mark.parametrize("metric", [rmse, mae])
    def test_nan_ground_truth_rejected(self, metric):
        with pytest.raises(ValueError, match="actual ratings contain non-finite"):
            metric(np.array([np.nan]), np.array([1.0]))

    def test_scalar_shapes_still_work(self):
        assert rmse(np.float64(3.0), np.float64(3.0)) == 0.0


class TestProperties:
    @given(st.lists(st.floats(1.0, 5.0), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_rmse_dominates_mae(self, values):
        actual = np.array(values)
        predicted = np.full_like(actual, 3.0)
        assert rmse(actual, predicted) >= mae(actual, predicted) - 1e-12

    @given(
        st.lists(st.floats(1.0, 5.0), min_size=2, max_size=20),
        st.floats(-1.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_consistency(self, values, shift):
        actual = np.array(values)
        predicted = actual + shift
        assert rmse(actual, predicted) == pytest.approx(abs(shift), abs=1e-9)
        assert mae(actual, predicted) == pytest.approx(abs(shift), abs=1e-9)

    @given(st.lists(st.floats(1.0, 5.0), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_nonnegative(self, values):
        actual = np.array(values)
        predicted = actual[::-1].copy()
        assert rmse(actual, predicted) >= 0
        assert mae(actual, predicted) >= 0
