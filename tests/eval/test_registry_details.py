"""Detailed registry behavior: seeding, config forwarding, OmniMatch factory."""

import numpy as np
import pytest

from repro.core import OmniMatchConfig
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval import make_predictor, run_scenario_methods


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=90, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=61),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


def tiny_config(**overrides):
    base = dict(embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=24, vocab_size=300,
                epochs=1, early_stopping=False)
    base.update(overrides)
    return OmniMatchConfig(**base)


class TestOmniMatchFactory:
    def test_config_forwarded(self, world):
        dataset, split = world
        fitted = make_predictor("OmniMatch", dataset, split, seed=0,
                                config=tiny_config())
        test = split.eval_interactions(dataset, "test")[:5]
        assert fitted.predict_interactions(test).shape == (5,)

    def test_seed_overrides_config_seed(self, world):
        """The trial seed must reach the model even when a config is given."""
        dataset, split = world
        test = split.eval_interactions(dataset, "test")[:10]
        a = make_predictor("OmniMatch", dataset, split, seed=1,
                           config=tiny_config(seed=0)).predict_interactions(test)
        b = make_predictor("OmniMatch", dataset, split, seed=2,
                           config=tiny_config(seed=0)).predict_interactions(test)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces(self, world):
        dataset, split = world
        test = split.eval_interactions(dataset, "test")[:10]
        a = make_predictor("OmniMatch", dataset, split, seed=3,
                           config=tiny_config()).predict_interactions(test)
        b = make_predictor("OmniMatch", dataset, split, seed=3,
                           config=tiny_config()).predict_interactions(test)
        np.testing.assert_allclose(a, b)


class TestBaselineFactorySeeding:
    @pytest.mark.parametrize("name", ["CMF", "EMCDR", "LIGHTGCN"])
    def test_seed_changes_result(self, world, name):
        dataset, split = world
        test = split.eval_interactions(dataset, "test")[:20]
        a = make_predictor(name, dataset, split, seed=1).predict_interactions(test)
        b = make_predictor(name, dataset, split, seed=2).predict_interactions(test)
        assert not np.allclose(a, b)

    @pytest.mark.parametrize("name", ["CMF", "EMCDR", "HeroGraph", "item-mean"])
    def test_seed_reproducibility(self, world, name):
        dataset, split = world
        test = split.eval_interactions(dataset, "test")[:20]
        a = make_predictor(name, dataset, split, seed=5).predict_interactions(test)
        b = make_predictor(name, dataset, split, seed=5).predict_interactions(test)
        np.testing.assert_allclose(a, b)


class TestRunScenarioMethods:
    def test_shares_one_generated_world(self, world):
        """All methods in one call must be evaluated on identical test sets:
        their per-trial metric lists line up in length and the scenario
        labels agree."""
        results = run_scenario_methods(
            ["item-mean", "global-mean"], "amazon", "books", "movies",
            trials=2, num_users=90, num_items_per_domain=40,
            reviews_per_user_mean=5.0,
        )
        assert {r.scenario for r in results} == {"books -> movies"}
        assert all(len(r.rmse_per_trial) == 2 for r in results)
        # item-mean dominates global-mean on the shared world
        by_name = {r.method: r for r in results}
        assert by_name["item-mean"].rmse <= by_name["global-mean"].rmse + 0.05
