"""Tests for the paired-bootstrap significance machinery."""

import numpy as np
import pytest

from repro.eval import paired_bootstrap


def make_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    actual = rng.integers(1, 6, size=n).astype(float)
    good = actual + rng.normal(0, 0.3, size=n)   # accurate method
    bad = actual + rng.normal(0, 1.2, size=n)    # noisy method
    return actual, good, bad


class TestPairedBootstrap:
    def test_clear_winner_detected(self):
        actual, good, bad = make_data()
        result = paired_bootstrap(actual, good, bad, num_samples=500)
        assert result.win_rate_a > 0.99
        assert result.significant_at_95
        assert result.delta_mean > 0  # positive delta favours A

    def test_identical_predictions_not_significant(self):
        actual, good, _ = make_data()
        result = paired_bootstrap(actual, good, good.copy(), num_samples=200)
        assert not result.significant_at_95
        assert result.delta_mean == pytest.approx(0.0, abs=1e-12)

    def test_identical_predictions_win_rate_is_half(self):
        # Regression: ties used to count as losses for A, so comparing a
        # method against itself read win_rate_a == 0.0 — the most
        # misleading possible answer for the near-identical-methods case
        # significance testing exists for. Ties now count as half a win.
        actual, good, _ = make_data()
        result = paired_bootstrap(actual, good, good.copy(), num_samples=200)
        assert result.win_rate_a == 0.5
        assert result.ties == result.num_samples == 200

    def test_clear_winner_has_no_ties(self):
        actual, good, bad = make_data()
        result = paired_bootstrap(actual, good, bad, num_samples=200)
        assert result.ties == 0

    def test_observed_metrics_match_direct_computation(self):
        from repro.eval import rmse

        actual, good, bad = make_data()
        result = paired_bootstrap(actual, good, bad, num_samples=50)
        assert result.observed_a == pytest.approx(rmse(actual, good))
        assert result.observed_b == pytest.approx(rmse(actual, bad))

    def test_mae_metric_supported(self):
        actual, good, bad = make_data()
        result = paired_bootstrap(actual, good, bad, metric="mae", num_samples=100)
        assert result.metric == "mae"
        assert result.win_rate_a > 0.95

    def test_deterministic_given_seed(self):
        actual, good, bad = make_data()
        a = paired_bootstrap(actual, good, bad, num_samples=100, seed=7)
        b = paired_bootstrap(actual, good, bad, num_samples=100, seed=7)
        assert a.delta_mean == b.delta_mean

    def test_ci_ordering(self):
        actual, good, bad = make_data()
        result = paired_bootstrap(actual, good, bad, num_samples=200)
        assert result.delta_ci_low <= result.delta_mean <= result.delta_ci_high

    @pytest.mark.parametrize("kwargs", [
        dict(metric="mape"),
        dict(num_samples=0),
    ])
    def test_invalid_arguments(self, kwargs):
        actual, good, bad = make_data(20)
        with pytest.raises(ValueError):
            paired_bootstrap(actual, good, bad, **kwargs)

    def test_misaligned_vectors_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(5), np.ones(4), np.ones(5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.array([]), np.array([]), np.array([]))
