"""Unit tests for the biased-MF substrate."""

import numpy as np
import pytest

from repro.baselines import BiasedMF, MFConfig


def synthetic_triples(num_users=30, num_items=20, seed=0, noise=0.1):
    """Low-rank world: rating = 3 + b_u + b_i + p.q, clipped to [1, 5]."""
    rng = np.random.default_rng(seed)
    p = rng.normal(0, 0.5, (num_users, 4))
    q = rng.normal(0, 0.5, (num_items, 4))
    bu = rng.normal(0, 0.3, num_users)
    bi = rng.normal(0, 0.3, num_items)
    triples = []
    for u in range(num_users):
        for i in rng.choice(num_items, size=12, replace=False):
            r = 3 + bu[u] + bi[i] + p[u] @ q[i] + rng.normal(0, noise)
            triples.append((f"u{u}", f"i{i}", float(np.clip(round(r), 1, 5))))
    return triples


class TestFit:
    def test_empty_triples_rejected(self):
        with pytest.raises(ValueError):
            BiasedMF().fit([])

    def test_learns_better_than_global_mean(self):
        triples = synthetic_triples()
        mf = BiasedMF(MFConfig(epochs=30, seed=1)).fit(triples)
        mean = np.mean([t[2] for t in triples])
        errs_mf, errs_mean = [], []
        for u, i, r in triples:
            errs_mf.append((mf.predict(u, i) - r) ** 2)
            errs_mean.append((mean - r) ** 2)
        assert np.mean(errs_mf) < 0.7 * np.mean(errs_mean)

    def test_deterministic(self):
        triples = synthetic_triples()
        a = BiasedMF(MFConfig(seed=2)).fit(triples)
        b = BiasedMF(MFConfig(seed=2)).fit(triples)
        np.testing.assert_allclose(a.user_factors, b.user_factors)

    def test_bias_free_variant(self):
        triples = synthetic_triples()
        mf = BiasedMF(MFConfig(use_bias=False, epochs=20)).fit(triples)
        np.testing.assert_allclose(mf.user_bias, 0.0)
        np.testing.assert_allclose(mf.item_bias, 0.0)


class TestPredict:
    @pytest.fixture(scope="class")
    def fitted(self):
        return BiasedMF(MFConfig(epochs=15)).fit(synthetic_triples())

    def test_clipped_to_rating_range(self, fitted):
        for u, i, _ in synthetic_triples()[:50]:
            assert 1.0 <= fitted.predict(u, i) <= 5.0

    def test_unknown_user_falls_back_to_item_side(self, fitted):
        pred = fitted.predict("stranger", "i1")
        assert 1.0 <= pred <= 5.0

    def test_unknown_item_falls_back_to_user_side(self, fitted):
        pred = fitted.predict("u1", "mystery-item")
        assert 1.0 <= pred <= 5.0

    def test_both_unknown_gives_global_mean(self, fitted):
        assert fitted.predict("x", "y") == pytest.approx(
            np.clip(fitted.global_mean, 1, 5)
        )

    def test_external_user_vector_override(self, fitted):
        item = "i1"
        override = np.zeros(fitted.config.num_factors)
        base = fitted.predict("stranger", item, user_vector=override)
        boosted = fitted.predict(
            "stranger", item, user_vector=fitted.item_vector(item) * 10
        )
        assert boosted != base

    def test_user_item_vector_accessors(self, fitted):
        assert fitted.user_vector("u1") is not None
        assert fitted.user_vector("stranger") is None
        assert fitted.item_vector("i1") is not None
        assert fitted.item_vector("nope") is None
