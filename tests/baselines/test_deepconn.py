"""Tests for the DeepCoNN single-domain review-based baseline."""

import numpy as np
import pytest

from repro.baselines import DeepCoNN
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval.metrics import rmse


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=100, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=19),
    )
    split = cold_start_split(dataset, seed=1)
    return dataset, split


@pytest.fixture(scope="module")
def fitted(world):
    dataset, split = world
    return DeepCoNN(epochs=4).fit(dataset, split)


class TestDeepCoNN:
    def test_predictions_in_range(self, world, fitted):
        dataset, split = world
        test = split.eval_interactions(dataset, "test")[:30]
        preds = fitted.predict_interactions(test)
        assert ((preds >= 1.0) & (preds <= 5.0)).all()

    def test_warm_users_fit_better_than_constant(self, world, fitted):
        dataset, split = world
        warm = split.train_interactions(dataset)[:150]
        actual = np.array([r.rating for r in warm])
        preds = fitted.predict_interactions(warm)
        assert rmse(actual, preds) < rmse(actual, np.full_like(actual, 1.0))

    def test_cold_user_gets_empty_document(self, world, fitted):
        """Cold users have no target reviews; DeepCoNN must not crash and
        must fall back to item-side evidence."""
        dataset, split = world
        cold_user = split.test_users[0]
        item = sorted(dataset.target.items)[0]
        value = fitted.predict(cold_user, item)
        assert 1.0 <= value <= 5.0

    def test_cold_predictions_ignore_user_identity(self, world, fitted):
        """All cold users share the same (empty) user document, so their
        predictions for the same item must coincide — the exact single-
        domain failure mode OmniMatch's auxiliary reviews address."""
        dataset, split = world
        item = sorted(dataset.target.items)[0]
        values = {fitted.predict(u, item) for u in split.test_users[:5]}
        assert len(values) == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(AssertionError):
            DeepCoNN().predict("u", "i")

    def test_registered_in_method_registry(self):
        from repro.eval import METHODS

        assert "DeepCoNN" in METHODS
