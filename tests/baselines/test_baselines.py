"""Contract and behavior tests for all six paper baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CMF,
    EMCDR,
    NGCF,
    PTUPCDR,
    GlobalMean,
    HeroGraph,
    ItemMean,
    LightGCN,
    source_triples,
    visible_target_triples,
)
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval.metrics import rmse

ALL_BASELINES = [GlobalMean, ItemMean, CMF, EMCDR, PTUPCDR, NGCF, LightGCN, HeroGraph]


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=120, num_items_per_domain=50,
                        reviews_per_user_mean=6.0, seed=17),
    )
    split = cold_start_split(dataset, seed=1)
    return dataset, split


@pytest.fixture(scope="module")
def fitted_all(world):
    dataset, split = world
    fitted = {}
    for cls in ALL_BASELINES:
        fitted[cls.__name__] = cls().fit(dataset, split)
    return fitted


class TestVisibilityHelpers:
    def test_visible_target_excludes_cold(self, world):
        dataset, split = world
        cold = set(split.cold_users)
        triples = visible_target_triples(dataset, split)
        assert all(u not in cold for u, _, _ in triples)

    def test_visible_target_includes_nonoverlap(self, world):
        dataset, split = world
        users = {u for u, _, _ in visible_target_triples(dataset, split)}
        non_overlap = dataset.target.users - dataset.source.users
        if non_overlap:
            assert non_overlap & users

    def test_source_triples_complete(self, world):
        dataset, _ = world
        assert len(source_triples(dataset)) == len(dataset.source)


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_predictions_in_rating_range(self, cls, world, fitted_all):
        dataset, split = world
        model = fitted_all[cls.__name__]
        test = split.eval_interactions(dataset, "test")[:40]
        preds = model.predict_interactions(test)
        assert ((preds >= 1.0) & (preds <= 5.0)).all()

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_handles_completely_unknown_pair(self, cls, fitted_all):
        pred = fitted_all[cls.__name__].predict("ghost-user", "ghost-item")
        assert 1.0 <= pred <= 5.0

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_beats_constant_one(self, cls, world, fitted_all):
        dataset, split = world
        model = fitted_all[cls.__name__]
        test = split.eval_interactions(dataset, "test")
        actual = np.array([r.rating for r in test])
        assert rmse(actual, model.predict_interactions(test)) < rmse(
            actual, np.full_like(actual, 1.0)
        )

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_name_attribute(self, cls):
        assert isinstance(cls.name, str) and cls.name


class TestColdStartBehaviors:
    def test_cross_domain_methods_beat_global_mean(self, world, fitted_all):
        """CMF / EMCDR / HeroGraph see source data and should use it."""
        dataset, split = world
        test = split.eval_interactions(dataset, "test")
        actual = np.array([r.rating for r in test])
        mean_rmse = rmse(actual, fitted_all["GlobalMean"].predict_interactions(test))
        hero_rmse = rmse(actual, fitted_all["HeroGraph"].predict_interactions(test))
        assert hero_rmse < mean_rmse * 1.05  # allow small noise margin

    def test_single_domain_gcn_degenerates_for_cold_users(self, world, fitted_all):
        """LightGCN's cold-user embeddings are untouched by propagation, so
        its per-user prediction variance over the same item set must be
        smaller than a cross-domain method's."""
        dataset, split = world
        model = fitted_all["LightGCN"]
        items = sorted(dataset.target.items)[:20]
        cold_user = split.test_users[0]
        node = model.node_index.get(f"u:{cold_user}")
        # cold users exist in the node table but have no edges
        assert node is not None
        adjacency_row = model._adjacency[node]
        assert adjacency_row.nnz == 0

    def test_herograph_cold_users_have_edges(self, world, fitted_all):
        dataset, split = world
        model = fitted_all["HeroGraph"]
        cold_user = split.test_users[0]
        node = model.node_index[f"u:{cold_user}"]
        assert model._adjacency[node].nnz > 0  # source-domain edges exist

    def test_emcdr_maps_cold_user_factor(self, world, fitted_all):
        dataset, split = world
        model = fitted_all["EMCDR"]
        cold_user = split.test_users[0]
        assert model.target_mf.user_vector(cold_user) is None
        mapped = model._mapped_vector(cold_user)
        assert mapped is not None and np.isfinite(mapped).all()

    def test_ptupcdr_personalized_bridges_differ(self, world, fitted_all):
        dataset, split = world
        model = fitted_all["PTUPCDR"]
        u1, u2 = split.test_users[0], split.test_users[1]
        b1, b2 = model._bridge(u1), model._bridge(u2)
        assert b1 is not None and b2 is not None
        assert not np.allclose(b1, b2)

    def test_cmf_shares_user_factors_across_domains(self, world, fitted_all):
        dataset, split = world
        model = fitted_all["CMF"]
        cold_user = split.test_users[0]
        # the cold user has a factor (learned from source interactions)
        assert cold_user in model.user_index

    def test_item_mean_damps_toward_global(self, world):
        dataset, split = world
        model = ItemMean(damping=1e9).fit(dataset, split)
        some_item = sorted(dataset.target.items)[0]
        assert model.predict("anyone", some_item) == pytest.approx(
            model._global, abs=1e-3
        )


class TestGraphSubstrate:
    def test_normalized_adjacency_row_scale(self):
        from repro.baselines import normalized_adjacency

        adj = normalized_adjacency(3, [(0, 1), (1, 2)])
        # node 1 has degree 2; entry (0,1) = 1/sqrt(1*2)
        assert adj[0, 1] == pytest.approx(1 / np.sqrt(2))
        assert adj[0, 2] == 0.0

    def test_normalized_adjacency_empty(self):
        from repro.baselines import normalized_adjacency

        adj = normalized_adjacency(4, [])
        assert adj.nnz == 0

    def test_sparse_propagate_gradient(self):
        import repro.nn as nn
        from repro.baselines import normalized_adjacency, sparse_propagate

        adj = normalized_adjacency(3, [(0, 1), (1, 2)])
        x = nn.Tensor(np.ones((3, 2)), requires_grad=True)
        sparse_propagate(adj, x).sum().backward()
        expected = adj.T @ np.ones((3, 2))
        np.testing.assert_allclose(x.grad, expected)
