"""Unit tests for the telemetry sink, active-sink stack, and line appender."""

import json

import numpy as np
import pytest

from repro.atomicio import LineAppender
from repro.obs import (
    TelemetrySink,
    emit_event,
    get_active_sink,
    read_events,
    use_sink,
)


class TestLineAppender:
    def test_appends_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with LineAppender(path) as appender:
            appender.append("one")
            appender.append("two\n")
        assert path.read_text() == "one\ntwo\n"

    def test_append_across_reopen(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with LineAppender(path) as appender:
            appender.append("one")
        with LineAppender(path) as appender:
            appender.append("two")
        assert path.read_text() == "one\ntwo\n"

    def test_rotation_shifts_segments(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with LineAppender(path, max_bytes=16, max_files=3) as appender:
            for index in range(6):
                appender.append(f"line-{index:02d}-padding")
        # Active file plus rotated segments, newest rotation = .1.
        assert path.exists()
        rotated = sorted(p.name for p in tmp_path.glob("log.jsonl.*"))
        assert rotated
        assert all(name.startswith("log.jsonl.") for name in rotated)
        # Oldest data beyond max_files rotated segments is dropped.
        assert len(rotated) <= 3

    def test_rotation_never_splits_a_line(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with LineAppender(path, max_bytes=10) as appender:
            appender.append("x" * 50)  # longer than max_bytes: still one line
            appender.append("y")
        all_lines = []
        for segment in [*sorted(tmp_path.glob("log.jsonl.*"), reverse=True), path]:
            all_lines.extend(segment.read_text().splitlines())
        assert "x" * 50 in all_lines
        assert "y" in all_lines

    def test_invalid_limits_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            LineAppender(tmp_path / "l", max_bytes=0)
        with pytest.raises(ValueError):
            LineAppender(tmp_path / "l", max_files=0)

    def test_close_idempotent(self, tmp_path):
        appender = LineAppender(tmp_path / "log")
        appender.append("one")
        appender.close()
        appender.close()


class TestTelemetrySink:
    def test_events_carry_base_fields(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            sink.emit("run_end", status="completed", epochs_trained=3)
        [event] = read_events(tmp_path / "run.jsonl")
        assert event["seq"] == 0
        assert event["run"] == "r1"
        assert event["kind"] == "run_end"
        assert event["status"] == "completed"
        assert isinstance(event["ts"], float)

    def test_seq_is_dense_and_counted(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            for index in range(5):
                sink.emit("health", epoch=index, health_kind="checkpoint")
            assert sink.event_count == 5
        events = read_events(tmp_path / "run.jsonl")
        assert [e["seq"] for e in events] == [0, 1, 2, 3, 4]

    def test_numpy_values_serialized(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            sink.emit(
                "batch",
                epoch=np.int64(1),
                batch=0,
                loss=np.float32(2.5),
                grad_norm=np.float64(0.1),
                lr=1.0,
                extra=np.array([1, 2]),
            )
        [event] = read_events(tmp_path / "run.jsonl")
        assert event["epoch"] == 1
        assert event["loss"] == pytest.approx(2.5)
        assert event["extra"] == [1, 2]

    def test_emit_after_close_raises(self, tmp_path):
        sink = TelemetrySink(tmp_path, run_id="r1")
        sink.close()
        with pytest.raises(RuntimeError, match="closed"):
            sink.emit("run_end", status="completed", epochs_trained=0)

    def test_unserializable_payload_raises(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            with pytest.raises(TypeError):
                sink.emit("run_end", status=object(), epochs_trained=0)

    def test_rotation_keeps_events_readable_in_order(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1", max_bytes=256) as sink:
            for index in range(50):
                sink.emit("health", epoch=index, health_kind="checkpoint")
        events = read_events(tmp_path / "run.jsonl")
        sequences = [e["seq"] for e in events]
        # Oldest segments may be dropped, but order must be preserved and
        # the stream must end at the newest event.
        assert sequences == sorted(sequences)
        assert sequences[-1] == 49


class TestActiveSinkStack:
    def test_no_sink_is_silent(self):
        assert get_active_sink() is None
        assert emit_event("health", epoch=0, health_kind="x") is None

    def test_use_sink_installs_and_removes(self, tmp_path):
        sink = TelemetrySink(tmp_path, run_id="r1")
        with use_sink(sink):
            assert get_active_sink() is sink
            emit_event("health", epoch=0, health_kind="checkpoint")
        assert get_active_sink() is None
        sink.close()
        assert len(read_events(sink.path)) == 1

    def test_nesting_innermost_wins(self, tmp_path):
        outer = TelemetrySink(tmp_path / "outer", run_id="outer")
        inner = TelemetrySink(tmp_path / "inner", run_id="inner")
        with use_sink(outer):
            with use_sink(inner):
                assert get_active_sink() is inner
            assert get_active_sink() is outer
        outer.close()
        inner.close()

    def test_use_sink_none_is_noop(self, tmp_path):
        sink = TelemetrySink(tmp_path, run_id="r1")
        with use_sink(sink):
            with use_sink(None):
                assert get_active_sink() is sink
        sink.close()

    def test_stack_unwinds_on_exception(self, tmp_path):
        sink = TelemetrySink(tmp_path, run_id="r1")
        with pytest.raises(ValueError):
            with use_sink(sink):
                raise ValueError
        assert get_active_sink() is None
        sink.close()


class TestReadEvents:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            sink.emit("health", epoch=0, health_kind="checkpoint")
        with open(path, "a") as handle:
            handle.write('{"seq": 1, "truncated')  # crash mid-append
        events = read_events(path)
        assert len(events) == 1

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('not json\n{"seq": 0, "ts": 1, "run": "r", "kind": "x"}\n')
        with pytest.raises(ValueError, match="malformed"):
            read_events(path)

    def test_empty_file_reads_empty(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        assert read_events(path) == []
