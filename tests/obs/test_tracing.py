"""Unit tests for hierarchical tracing spans."""

import pytest

from repro.obs import SpanTracer


class TestSpanLifecycle:
    def test_nested_paths_recorded(self):
        tracer = SpanTracer()
        with tracer.span("epoch"):
            with tracer.span("forward"):
                pass
            with tracer.span("backward"):
                pass
        summary = tracer.summary()
        assert set(summary) == {"epoch", "epoch/forward", "epoch/backward"}
        assert summary["epoch"]["calls"] == 1
        assert summary["epoch/forward"]["calls"] == 1

    def test_exit_out_of_order_raises(self):
        tracer = SpanTracer()
        outer = tracer.enter("outer")
        tracer.enter("inner")
        with pytest.raises(RuntimeError, match="out of order"):
            tracer.exit(outer, 0.0)

    def test_exit_without_enter_raises(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            tracer.exit(("ghost",), 0.0)

    def test_span_closes_on_exception(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("epoch"):
                raise ValueError
        # Stack unwound: a fresh top-level span is recorded at the root.
        with tracer.span("next"):
            pass
        assert "next" in tracer.summary()

    def test_manual_enter_exit_credits_given_elapsed(self):
        tracer = SpanTracer()
        token = tracer.enter("forward")
        tracer.exit(token, 1.25)
        assert tracer.totals()["forward"] == pytest.approx(1.25)
        assert tracer.summary()["forward"]["inclusive_seconds"] == pytest.approx(1.25)


class TestReentrancy:
    def test_same_name_nesting_counts_wall_clock_once(self):
        tracer = SpanTracer()
        outer = tracer.enter("work")
        inner = tracer.enter("work")
        tracer.exit(inner, 1.0)
        tracer.exit(outer, 2.0)  # outer measurement already contains inner
        assert tracer.totals()["work"] == pytest.approx(2.0)
        assert tracer.call_counts()["work"] == 2

    def test_sequential_same_name_accumulates(self):
        tracer = SpanTracer()
        for elapsed in (1.0, 2.0):
            token = tracer.enter("work")
            tracer.exit(token, elapsed)
        assert tracer.totals()["work"] == pytest.approx(3.0)

    def test_same_name_different_paths_both_in_summary(self):
        tracer = SpanTracer()
        outer = tracer.enter("work")
        inner = tracer.enter("work")
        tracer.exit(inner, 1.0)
        tracer.exit(outer, 2.0)
        summary = tracer.summary()
        assert summary["work"]["inclusive_seconds"] == pytest.approx(2.0)
        assert summary["work/work"]["inclusive_seconds"] == pytest.approx(1.0)


class TestSummaries:
    def test_exclusive_subtracts_direct_children(self):
        tracer = SpanTracer()
        epoch = tracer.enter("epoch")
        forward = tracer.enter("forward")
        tracer.exit(forward, 3.0)
        backward = tracer.enter("backward")
        tracer.exit(backward, 2.0)
        tracer.exit(epoch, 10.0)
        summary = tracer.summary()
        assert summary["epoch"]["exclusive_seconds"] == pytest.approx(5.0)
        assert summary["epoch/forward"]["exclusive_seconds"] == pytest.approx(3.0)

    def test_exclusive_ignores_grandchildren(self):
        tracer = SpanTracer()
        a = tracer.enter("a")
        b = tracer.enter("b")
        c = tracer.enter("c")
        tracer.exit(c, 1.0)
        tracer.exit(b, 4.0)
        tracer.exit(a, 10.0)
        summary = tracer.summary()
        # a's exclusive subtracts b (its direct child) only, not c.
        assert summary["a"]["exclusive_seconds"] == pytest.approx(6.0)
        assert summary["a/b"]["exclusive_seconds"] == pytest.approx(3.0)

    def test_tree_view(self):
        tracer = SpanTracer()
        epoch = tracer.enter("epoch")
        forward = tracer.enter("forward")
        tracer.exit(forward, 1.0)
        tracer.exit(epoch, 2.0)
        tree = tracer.tree()
        assert tree["epoch"]["seconds"] == pytest.approx(2.0)
        assert tree["epoch"]["children"]["forward"]["seconds"] == pytest.approx(1.0)

    def test_reset_clears_everything(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            pass
        tracer.reset()
        assert tracer.summary() == {}
        assert tracer.totals() == {}
        # An abandoned open span must not poison the next one.
        tracer.enter("left-open")
        tracer.reset()
        with tracer.span("fresh"):
            pass
        assert set(tracer.summary()) == {"fresh"}
