"""Unit tests for the telemetry schema and run-report rendering."""

import pytest

from repro.obs import (
    EVENT_FIELDS,
    TelemetrySchemaError,
    TelemetrySink,
    load_run_events,
    render_report,
    summarize_run,
    validate_event,
    validate_run_file,
)


def make_event(kind="health", **overrides):
    event = {"seq": 0, "ts": 1.0, "run": "r1", "kind": kind}
    event.update({name: 0 for name in EVENT_FIELDS.get(kind, ())})
    event.update(overrides)
    return event


class TestValidateEvent:
    def test_valid_event_passes(self):
        event = make_event("run_end", status="completed", epochs_trained=2)
        assert validate_event(event) is event

    def test_non_dict_rejected(self):
        with pytest.raises(TelemetrySchemaError, match="not a JSON object"):
            validate_event([1, 2, 3])

    @pytest.mark.parametrize("missing", ["seq", "ts", "run", "kind"])
    def test_missing_base_field_rejected(self, missing):
        event = make_event()
        del event[missing]
        with pytest.raises(TelemetrySchemaError, match=missing):
            validate_event(event)

    def test_bool_seq_rejected(self):
        with pytest.raises(TelemetrySchemaError, match="seq must be an integer"):
            validate_event(make_event(seq=True))

    def test_negative_seq_rejected(self):
        with pytest.raises(TelemetrySchemaError, match="non-negative"):
            validate_event(make_event(seq=-1))

    def test_empty_run_rejected(self):
        with pytest.raises(TelemetrySchemaError, match="run must be"):
            validate_event(make_event(run=""))

    def test_unknown_kind_rejected(self):
        with pytest.raises(TelemetrySchemaError, match="unknown event kind"):
            validate_event(make_event("made_up_kind"))

    def test_missing_required_payload_field_rejected(self):
        event = make_event("batch")
        del event["loss"]
        with pytest.raises(TelemetrySchemaError, match="loss"):
            validate_event(event)

    def test_extra_fields_allowed(self):
        event = make_event("health", extra_annotation="fine")
        validate_event(event)


class TestValidateRunFile:
    def test_valid_file(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="r1") as sink:
            sink.emit("run_start", seed=0, epochs=2, train_interactions=10)
            sink.emit("run_end", status="completed", epochs_trained=2)
        stats = validate_run_file(tmp_path / "run.jsonl")
        assert stats["events"] == 2
        assert stats["runs"] == 1
        assert stats["kinds"] == {"run_start": 1, "run_end": 1}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text("")
        with pytest.raises(TelemetrySchemaError, match="no telemetry events"):
            validate_run_file(path)

    def test_non_increasing_seq_rejected(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            '{"seq": 1, "ts": 1.0, "run": "r1", "kind": "health", '
            '"epoch": 0, "health_kind": "x"}',
            '{"seq": 1, "ts": 2.0, "run": "r1", "kind": "health", '
            '"epoch": 0, "health_kind": "x"}',
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TelemetrySchemaError, match="not increasing"):
            validate_run_file(path)

    def test_interleaved_runs_each_monotone(self, tmp_path):
        path = tmp_path / "run.jsonl"
        lines = [
            '{"seq": 0, "ts": 1.0, "run": "a", "kind": "health", '
            '"epoch": 0, "health_kind": "x"}',
            '{"seq": 0, "ts": 1.0, "run": "b", "kind": "health", '
            '"epoch": 0, "health_kind": "x"}',
            '{"seq": 1, "ts": 2.0, "run": "a", "kind": "health", '
            '"epoch": 1, "health_kind": "x"}',
        ]
        path.write_text("\n".join(lines) + "\n")
        stats = validate_run_file(path)
        assert stats["runs"] == 2

    def test_schema_violation_names_position(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"seq": 0, "ts": 1.0, "run": "r", "kind": "nope"}\n')
        with pytest.raises(TelemetrySchemaError, match="event 0"):
            validate_run_file(path)


class TestReport:
    def write_run(self, directory):
        with TelemetrySink(directory, run_id="report-test") as sink:
            sink.emit("run_start", seed=0, epochs=2, train_interactions=100)
            for epoch in (1, 2):
                sink.emit(
                    "epoch", epoch=epoch, seconds=0.5, samples=100,
                    samples_per_sec=200.0, total=2.0 / epoch,
                    valid_rmse=1.5 / epoch, rng="cafe0123",
                )
            sink.emit("health", epoch=1, health_kind="checkpoint")
            sink.emit("checkpoint_write", path="ckpt/epoch-0001", epoch=1)
            sink.emit(
                "span_summary",
                totals={"epoch": 1.0, "forward": 0.6},
                spans={
                    "epoch": {"calls": 2, "inclusive_seconds": 1.0,
                              "exclusive_seconds": 0.4},
                    "epoch/forward": {"calls": 6, "inclusive_seconds": 0.6,
                                      "exclusive_seconds": 0.6},
                },
            )
            sink.emit("metrics_summary", counters={"batches": 6},
                      gauges={"lr": 1.0}, histograms={})
            sink.emit("run_end", status="completed", epochs_trained=2)
        return directory / "run.jsonl"

    def test_summarize_run(self, tmp_path):
        events = load_run_events(self.write_run(tmp_path))
        summary = summarize_run(events)
        assert summary["run"] == "report-test"
        assert summary["status"] == "completed"
        assert summary["epochs"] == 2
        assert summary["samples"] == 200
        assert summary["samples_per_sec"] == pytest.approx(200.0)
        assert summary["phases"]["forward"] == pytest.approx(0.6)
        assert summary["health"] == {"checkpoint": 1}
        assert summary["checkpoints"] == 1
        assert summary["final"]["epoch"] == 2
        assert summary["metrics"]["counters"]["batches"] == 6

    def write_alloc_run(self, directory):
        with TelemetrySink(directory, run_id="alloc-test") as sink:
            sink.emit("run_start", seed=0, epochs=2, train_interactions=100)
            for epoch in (1, 2):
                sink.emit(
                    "epoch", epoch=epoch, seconds=0.5, samples=100,
                    samples_per_sec=200.0, total=2.0 / epoch,
                    alloc={
                        "graph_bytes": 1024, "backward_bytes": 512,
                        "peak_bytes": 4096 * epoch, "arena_hits": 30,
                        "arena_misses": 10, "fused_ops": 5,
                    },
                )
            sink.emit("run_end", status="completed", epochs_trained=2)
        return directory / "run.jsonl"

    def test_summarize_alloc_counters(self, tmp_path):
        summary = summarize_run(load_run_events(self.write_alloc_run(tmp_path)))
        alloc = summary["alloc"]
        assert alloc["graph_bytes"] == 2048  # summed across epochs
        assert alloc["arena_hits"] == 60
        assert alloc["peak_bytes"] == 8192  # high-water mark, not a sum
        assert alloc["fused_ops"] == 10

    def test_render_report_allocation_line(self, tmp_path):
        text = render_report(load_run_events(self.write_alloc_run(tmp_path)))
        assert "allocation:" in text
        assert "arena 75.0% hit (60/80)" in text
        assert "fused 10 ops" in text
        assert "peak 8.0 KiB/step" in text

    def test_no_allocation_line_without_alloc_events(self, tmp_path):
        text = render_report(load_run_events(self.write_run(tmp_path)))
        assert "allocation:" not in text

    def test_render_report_mentions_key_facts(self, tmp_path):
        events = load_run_events(self.write_run(tmp_path))
        text = render_report(events)
        assert "report-test" in text
        assert "completed" in text
        assert "forward" in text
        assert "checkpoint" in text
        assert "rng cafe0123" in text

    def test_load_run_events_accepts_directory(self, tmp_path):
        self.write_run(tmp_path)
        assert len(load_run_events(tmp_path)) == 8

    def test_load_run_events_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run_events(tmp_path / "nope.jsonl")

    def test_render_report_on_eval_only_stream(self, tmp_path):
        with TelemetrySink(tmp_path, run_id="eval-only") as sink:
            sink.emit("trial", method="m", trial=0, seed=0, rmse=1.0, mae=0.8)
        text = render_report(load_run_events(tmp_path))
        assert "eval-only" in text
        assert "trial 0" in text

    def write_ann_run(self, directory):
        with TelemetrySink(directory, run_id="ann-test") as sink:
            sink.emit("serve_ann_build", items=1000, nlist=32, iters=5,
                      store="int8", seconds=0.4, store_bytes=256_000,
                      float32_bytes=1_024_000)
            for user in ("U1", "U2"):
                sink.emit("serve_ann_probe", user=user, k=10, nprobe=4,
                          nlist=32, candidates=125, catalog=1000,
                          seconds=0.002)
            sink.emit("serve_ann_recall", users=2, k=10, recall=0.95,
                      nprobe=4)
        return directory / "run.jsonl"

    def test_summarize_ann_events(self, tmp_path):
        path = self.write_ann_run(tmp_path)
        validate_run_file(path)
        ann = summarize_run(load_run_events(path))["ann"]
        assert ann["builds"] == 1
        assert ann["nlist"] == 32
        assert ann["store"] == "int8"
        assert ann["probes"] == 2
        assert ann["candidates"] == 250
        assert ann["scan_fraction"] == pytest.approx(0.125)
        assert ann["probe_p50"] == pytest.approx(0.002)
        assert ann["recall"] == pytest.approx(0.95)

    def test_render_report_ann_section(self, tmp_path):
        text = render_report(load_run_events(self.write_ann_run(tmp_path)))
        assert "ann retrieval (1 index builds, 2 probes)" in text
        assert "nlist 32" in text
        assert "4.0x vs float32" in text
        assert "12.5% scanned" in text
        assert "recall@10: 0.950" in text
