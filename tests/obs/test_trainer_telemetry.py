"""Integration tests: the trainer and eval protocol stream valid telemetry."""

import json

import pytest

from repro.core import OmniMatchConfig, OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval import run_experiment
from repro.faults import NonFiniteLossInjector
from repro.obs import (
    TelemetrySink,
    read_events,
    render_report,
    validate_run_file,
)


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books", "movies",
        GeneratorConfig(num_users=60, num_items_per_domain=30,
                        reviews_per_user_mean=4.0, seed=11),
    )
    return dataset, cold_start_split(dataset, seed=2)


def tiny_config(**overrides):
    base = dict(embed_dim=12, num_filters=3, kernel_sizes=(2,), invariant_dim=8,
                specific_dim=8, projection_dim=6, doc_len=16, vocab_size=200,
                epochs=2, batch_size=32, early_stopping=False, seed=5)
    base.update(overrides)
    return OmniMatchConfig(**base)


@pytest.fixture(scope="module")
def traced_run(world, tmp_path_factory):
    dataset, split = world
    directory = tmp_path_factory.mktemp("telemetry")
    sink = TelemetrySink(directory, run_id="itest")
    trainer = OmniMatchTrainer(dataset, split, tiny_config(), telemetry=sink)
    trainer.fit(2, validate_every=1,
                checkpoint_every=1, checkpoint_dir=directory / "ckpt")
    sink.close()
    return trainer, directory / "run.jsonl"


class TestTrainedRunStream:
    def test_schema_valid(self, traced_run):
        _, path = traced_run
        stats = validate_run_file(path)
        assert stats["runs"] == 1
        for kind in ("run_start", "batch", "epoch", "span_summary",
                     "metrics_summary", "run_end", "checkpoint_write",
                     "health"):
            assert kind in stats["kinds"], kind

    def test_span_totals_match_perf_registry_within_1_percent(self, traced_run):
        trainer, path = traced_run
        [span_summary] = [
            e for e in read_events(path) if e["kind"] == "span_summary"
        ]
        perf = {
            name: entry["seconds"]
            for name, entry in trainer.perf.summary().items()
        }
        shared = set(span_summary["totals"]) & set(perf)
        assert {"batch_assembly", "forward", "backward",
                "optimizer", "validation"} <= shared
        for name in shared:
            span_seconds = span_summary["totals"][name]
            assert abs(span_seconds - perf[name]) <= 0.01 * max(
                span_seconds, perf[name]
            ), name

    def test_batch_events_carry_training_signal(self, traced_run):
        _, path = traced_run
        batches = [e for e in read_events(path) if e["kind"] == "batch"]
        assert batches
        for event in batches:
            assert event["loss"] > 0
            assert event["grad_norm"] >= 0
            assert event["lr"] > 0
            assert event["samples"] > 0

    def test_epoch_events_carry_throughput_and_rng(self, traced_run):
        _, path = traced_run
        epochs = [e for e in read_events(path) if e["kind"] == "epoch"]
        assert len(epochs) == 2
        for event in epochs:
            assert event["samples_per_sec"] > 0
            assert len(event["rng"]) == 16
        # The RNG stream advances between epochs.
        assert epochs[0]["rng"] != epochs[1]["rng"]

    def test_run_end_reports_completion(self, traced_run):
        _, path = traced_run
        [run_end] = [e for e in read_events(path) if e["kind"] == "run_end"]
        assert run_end["status"] == "completed"
        assert run_end["epochs_trained"] == 2

    def test_metrics_summary_counts_all_batches(self, traced_run):
        _, path = traced_run
        events = read_events(path)
        [summary] = [e for e in events if e["kind"] == "metrics_summary"]
        batches = [e for e in events if e["kind"] == "batch"]
        assert summary["counters"]["batches"] == len(batches)
        assert summary["histograms"]["batch_loss"]["count"] == len(batches)
        assert "rng_checksum" in summary["gauges"]

    def test_report_renders(self, traced_run):
        _, path = traced_run
        text = render_report(read_events(path))
        assert "status: completed" in text
        assert "phase time breakdown" in text
        assert "forward" in text

    def test_events_are_plain_json(self, traced_run):
        _, path = traced_run
        for line in path.read_text().splitlines():
            json.loads(line)


class TestHealthFolding:
    def test_injected_fault_appears_in_stream(self, world, tmp_path):
        dataset, split = world
        sink = TelemetrySink(tmp_path, run_id="faulty")
        trainer = OmniMatchTrainer(dataset, split, tiny_config(), telemetry=sink)
        trainer.fit(2, fault_injector=NonFiniteLossInjector(epoch=1, batch=0))
        sink.close()
        events = read_events(tmp_path / "run.jsonl")
        health_kinds = {e["health_kind"] for e in events if e["kind"] == "health"}
        assert "nonfinite_loss" in health_kinds
        assert "rollback" in health_kinds
        # The same recovery is also counted in the metrics summary.
        [summary] = [e for e in events if e["kind"] == "metrics_summary"]
        assert summary["counters"]["health.nonfinite_loss"] >= 1
        validate_run_file(tmp_path / "run.jsonl")

    def test_run_without_sink_emits_nothing_and_still_trains(self, world):
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, tiny_config())
        result = trainer.fit(1)
        assert len(result.history) == 1
        # Tracer and metrics still record locally even without a sink.
        assert trainer.tracer.totals()
        assert trainer.metrics.counter("batches") > 0


class TestEvalTelemetry:
    def test_trials_and_experiment_events(self, world, tmp_path):
        dataset, _ = world
        sink = TelemetrySink(tmp_path, run_id="eval")
        result = run_experiment(
            "global-mean", "amazon", "books", "movies",
            trials=2, dataset=dataset, telemetry=sink,
        )
        sink.close()
        events = read_events(tmp_path / "run.jsonl")
        trials = [e for e in events if e["kind"] == "trial"]
        assert [e["trial"] for e in trials] == [0, 1]
        assert [e["seed"] for e in trials] == [0, 1]
        assert trials[0]["rmse"] == pytest.approx(result.rmse_per_trial[0])
        [experiment] = [e for e in events if e["kind"] == "experiment"]
        assert experiment["rmse"] == pytest.approx(result.rmse)
        assert experiment["trials"] == 2
        assert experiment["rmse_std"] == pytest.approx(result.rmse_std)
        assert experiment["mae_std"] == pytest.approx(result.mae_std)
        assert experiment["wall_seconds"] == pytest.approx(result.wall_seconds)
        assert trials[0]["wall_seconds"] >= trials[0]["fit_seconds"]
        validate_run_file(tmp_path / "run.jsonl")

    def test_no_sink_protocol_still_works(self, world):
        dataset, _ = world
        result = run_experiment(
            "global-mean", "amazon", "books", "movies",
            trials=1, dataset=dataset,
        )
        assert result.trials == 1


class TestCheckpointEvents:
    def test_write_read_prune_emit_events(self, world, tmp_path):
        from repro.core import read_training_checkpoint
        from repro.core.checkpoint import prune_checkpoints
        from repro.obs import use_sink

        dataset, split = world
        run_dir = tmp_path / "run"
        trainer = OmniMatchTrainer(dataset, split, tiny_config())
        trainer.fit(3, checkpoint_every=1, checkpoint_dir=run_dir, keep_last=2)

        sink = TelemetrySink(tmp_path / "obs", run_id="ckpt-test")
        with use_sink(sink):
            checkpoint = read_training_checkpoint(run_dir / "epoch-0003")
            prune_checkpoints(run_dir, keep_last=1)
        sink.close()
        assert checkpoint.epoch == 3
        events = read_events(sink.path)
        [read] = [e for e in events if e["kind"] == "checkpoint_read"]
        assert read["epoch"] == 3
        [prune] = [e for e in events if e["kind"] == "checkpoint_prune"]
        assert len(prune["removed"]) == 1

    def test_traced_fit_emits_prune_events(self, world, tmp_path):
        dataset, split = world
        sink = TelemetrySink(tmp_path / "obs", run_id="prune-test")
        trainer = OmniMatchTrainer(dataset, split, tiny_config(), telemetry=sink)
        trainer.fit(3, checkpoint_every=1, checkpoint_dir=tmp_path / "run",
                    keep_last=1)
        sink.close()
        events = read_events(sink.path)
        writes = [e for e in events if e["kind"] == "checkpoint_write"]
        prunes = [e for e in events if e["kind"] == "checkpoint_prune"]
        assert len(writes) == 3
        assert prunes, "keep_last=1 over 3 epochs must prune"
        validate_run_file(sink.path)
