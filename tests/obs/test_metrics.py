"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import json

import pytest

from repro.obs import MetricsRegistry


class TestCounters:
    def test_default_increment(self):
        registry = MetricsRegistry()
        registry.inc("batches")
        registry.inc("batches")
        assert registry.counter("batches") == 2.0

    def test_custom_increment(self):
        registry = MetricsRegistry()
        registry.inc("samples", 64)
        registry.inc("samples", 32)
        assert registry.counter("samples") == 96.0

    def test_missing_counter_reads_zero(self):
        assert MetricsRegistry().counter("never") == 0.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="non-negative"):
            registry.inc("batches", -1)

    def test_zero_increment_allowed(self):
        registry = MetricsRegistry()
        registry.inc("batches", 0)
        assert registry.counter("batches") == 0.0


class TestGauges:
    def test_last_value_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("lr", 1.0)
        registry.set_gauge("lr", 0.5)
        assert registry.gauge("lr") == 0.5

    def test_string_gauge(self):
        registry = MetricsRegistry()
        registry.set_gauge("rng_checksum", "abcd1234")
        assert registry.gauge("rng_checksum") == "abcd1234"

    def test_missing_gauge_is_none(self):
        assert MetricsRegistry().gauge("never") is None


class TestHistograms:
    def test_summary_aggregates(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("loss", value)
        summary = registry.snapshot()["histograms"]["loss"]
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(10.0)
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["last"] == 4.0
        assert summary["p50"] == pytest.approx(2.5)

    def test_window_bounds_memory_but_not_aggregates(self):
        registry = MetricsRegistry()
        for value in range(2000):
            registry.observe("loss", float(value))
        summary = registry.snapshot()["histograms"]["loss"]
        # Exact aggregates cover every observation...
        assert summary["count"] == 2000
        assert summary["min"] == 0.0
        assert summary["max"] == 1999.0
        # ...while percentiles come from the bounded recent window.
        assert summary["p50"] >= 1000.0

    def test_single_observation(self):
        registry = MetricsRegistry()
        registry.observe("loss", 7.0)
        summary = registry.snapshot()["histograms"]["loss"]
        assert summary["p50"] == 7.0
        assert summary["p95"] == 7.0


class TestSnapshotAndReset:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.inc("batches")
        registry.set_gauge("lr", 1.0)
        registry.set_gauge("rng", "deadbeef")
        registry.observe("loss", 2.0)
        encoded = json.dumps(registry.snapshot())
        decoded = json.loads(encoded)
        assert decoded["counters"]["batches"] == 1.0
        assert decoded["gauges"]["rng"] == "deadbeef"
        assert decoded["histograms"]["loss"]["count"] == 1

    def test_snapshot_is_a_copy(self):
        registry = MetricsRegistry()
        registry.inc("batches")
        snap = registry.snapshot()
        snap["counters"]["batches"] = 99.0
        assert registry.counter("batches") == 1.0

    def test_reset(self):
        registry = MetricsRegistry()
        registry.inc("batches")
        registry.set_gauge("lr", 1.0)
        registry.observe("loss", 2.0)
        registry.reset()
        snap = registry.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}
