"""Unit tests for the transformer encoder (BERT-ablation substrate)."""

import numpy as np
import pytest

import repro.nn as nn


RNG = lambda seed=0: np.random.default_rng(seed)


class TestMultiHeadSelfAttention:
    def test_output_shape(self):
        attn = nn.MultiHeadSelfAttention(8, 2, RNG())
        out = attn(nn.Tensor(np.zeros((3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_dim_divisibility_validated(self):
        with pytest.raises(ValueError):
            nn.MultiHeadSelfAttention(7, 2, RNG())

    def test_gradients_flow(self):
        attn = nn.MultiHeadSelfAttention(4, 2, RNG())
        x = nn.Tensor(RNG(1).normal(size=(2, 3, 4)), requires_grad=True)
        attn(x).sum().backward()
        assert x.grad is not None
        assert attn.query.weight.grad is not None

    def test_position_mixing(self):
        """Attention output at position 0 must depend on other positions."""
        attn = nn.MultiHeadSelfAttention(4, 1, RNG(3))
        x1 = RNG(4).normal(size=(1, 4, 4))
        x2 = x1.copy()
        x2[0, 3] += 5.0  # change last position only
        out1 = attn(nn.Tensor(x1)).data
        out2 = attn(nn.Tensor(x2)).data
        assert not np.allclose(out1[0, 0], out2[0, 0])


class TestTransformerEncoder:
    def test_pooled_shape(self):
        enc = nn.TransformerEncoder(8, 2, 2, 16, max_len=10, rng=RNG())
        assert enc(nn.Tensor(np.zeros((4, 7, 8)))).shape == (4, 8)

    def test_max_len_enforced(self):
        enc = nn.TransformerEncoder(8, 1, 2, 16, max_len=5, rng=RNG())
        with pytest.raises(ValueError):
            enc(nn.Tensor(np.zeros((1, 6, 8))))

    def test_positions_break_permutation_invariance(self):
        enc = nn.TransformerEncoder(4, 1, 1, 8, max_len=6, rng=RNG(5))
        enc.eval()
        x = RNG(6).normal(size=(1, 4, 4))
        out1 = enc(nn.Tensor(x)).data
        out2 = enc(nn.Tensor(x[:, ::-1])).data
        assert not np.allclose(out1, out2)

    def test_trains_on_toy_regression(self):
        rng = RNG(7)
        enc = nn.TransformerEncoder(4, 1, 2, 8, max_len=6, rng=rng, dropout=0.0)
        head = nn.Linear(4, 1, rng)
        x = rng.normal(size=(16, 5, 4))
        y = x.mean(axis=(1, 2))
        optimizer = nn.Adam(enc.parameters() + head.parameters(), lr=1e-2)
        first = None
        for _ in range(30):
            optimizer.zero_grad()
            loss = nn.mse_loss(head(enc(nn.Tensor(x))).reshape(-1), y)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.5

    def test_parameters_counted(self):
        enc = nn.TransformerEncoder(8, 2, 2, 16, max_len=10, rng=RNG())
        assert enc.num_parameters() > 8 * 10  # at least the position table
