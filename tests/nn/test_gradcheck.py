"""Property-based finite-difference gradient verification.

Hypothesis generates random inputs; every analytic gradient produced by the
autograd tape must match the central finite difference to tight tolerance.
This is the correctness backbone of the whole ``repro.nn`` substrate.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn as nn
from repro.nn import functional as F

SETTLE = dict(max_examples=25, deadline=None)


def finite_diff(fn, x_data, index, eps=1e-6):
    x_plus = x_data.copy()
    x_plus[index] += eps
    x_minus = x_data.copy()
    x_minus[index] -= eps
    return (fn(x_plus) - fn(x_minus)) / (2 * eps)


def check_gradient(fn_tensor, fn_numpy, x_data, atol=1e-6):
    """Compare analytic gradient of sum(fn(x)) against finite differences."""
    x = nn.Tensor(x_data, requires_grad=True)
    fn_tensor(x).sum().backward()
    analytic = x.grad
    rng = np.random.default_rng(0)
    flat_indices = rng.choice(x_data.size, size=min(5, x_data.size), replace=False)
    for flat in flat_indices:
        index = np.unravel_index(flat, x_data.shape)
        numeric = finite_diff(lambda d: fn_numpy(d).sum(), x_data, index)
        assert abs(analytic[index] - numeric) < atol, (
            f"grad mismatch at {index}: {analytic[index]} vs {numeric}"
        )


arrays_1d = st.integers(2, 8).map(
    lambda n: np.random.default_rng(n).normal(size=n) + 0.0
)
arrays_2d = st.tuples(st.integers(2, 5), st.integers(2, 5)).map(
    lambda s: np.random.default_rng(s[0] * 7 + s[1]).normal(size=s)
)


class TestElementwiseGradients:
    @given(arrays_1d)
    @settings(**SETTLE)
    def test_exp(self, x):
        check_gradient(lambda t: t.exp(), np.exp, x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_tanh(self, x):
        check_gradient(lambda t: t.tanh(), np.tanh, x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_sigmoid(self, x):
        check_gradient(lambda t: t.sigmoid(), lambda d: 1 / (1 + np.exp(-d)), x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_log_of_positive(self, x):
        x = np.abs(x) + 0.5
        check_gradient(lambda t: t.log(), np.log, x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_sqrt_of_positive(self, x):
        x = np.abs(x) + 0.5
        check_gradient(lambda t: t.sqrt(), np.sqrt, x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_square(self, x):
        check_gradient(lambda t: t**2, lambda d: d**2, x)

    @given(arrays_1d)
    @settings(**SETTLE)
    def test_reciprocal(self, x):
        x = np.abs(x) + 1.0
        check_gradient(lambda t: 1.0 / t, lambda d: 1.0 / d, x)


class TestCompositeGradients:
    @given(arrays_2d)
    @settings(**SETTLE)
    def test_softmax_cross_entropy_like(self, x):
        labels = np.zeros(x.shape[0], dtype=np.int64)

        def tensor_fn(t):
            return nn.cross_entropy(t, labels)

        def numpy_fn(d):
            shifted = d - d.max(axis=1, keepdims=True)
            logp = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
            return np.array(-logp[np.arange(d.shape[0]), labels].mean())

        check_gradient(tensor_fn, numpy_fn, x, atol=1e-5)

    @given(arrays_2d)
    @settings(**SETTLE)
    def test_l2_normalize(self, x):
        def numpy_fn(d):
            return d / np.sqrt((d**2).sum(axis=-1, keepdims=True) + 1e-12)

        check_gradient(lambda t: F.l2_normalize(t), numpy_fn, x, atol=1e-5)

    @given(arrays_2d)
    @settings(**SETTLE)
    def test_logsumexp(self, x):
        def numpy_fn(d):
            m = d.max(axis=-1, keepdims=True)
            return (np.log(np.exp(d - m).sum(axis=-1, keepdims=True)) + m).squeeze(-1)

        check_gradient(lambda t: F.logsumexp(t, axis=-1), numpy_fn, x, atol=1e-5)

    @given(st.integers(0, 100))
    @settings(**SETTLE)
    def test_linear_layer(self, seed):
        rng = np.random.default_rng(seed)
        layer = nn.Linear(4, 3, rng)
        x_data = rng.normal(size=(5, 4))

        def tensor_fn(t):
            return layer(t)

        def numpy_fn(d):
            return d @ layer.weight.data.T + layer.bias.data

        check_gradient(tensor_fn, numpy_fn, x_data, atol=1e-5)

    @given(st.integers(0, 100))
    @settings(**SETTLE)
    def test_conv1d_against_naive(self, seed):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(2, 7, 3))
        weight = nn.Parameter(rng.normal(size=(4, 3, 3)))

        def naive(d):
            batch, seq, emb = d.shape
            f, k, _ = weight.data.shape
            out = np.zeros((batch, seq - k + 1, f))
            for b in range(batch):
                for t in range(seq - k + 1):
                    for j in range(f):
                        out[b, t, j] = (d[b, t : t + k] * weight.data[j]).sum()
            return out

        check_gradient(
            lambda t: nn.conv1d_text(t, weight), naive, x_data, atol=1e-5
        )

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_supcon_loss_gradient(self, seed):
        rng = np.random.default_rng(seed)
        x_data = rng.normal(size=(6, 4))
        labels = rng.integers(0, 3, size=6)

        x = nn.Tensor(x_data, requires_grad=True)
        nn.supcon_loss(x, labels).backward()
        analytic = x.grad

        def numpy_loss(d):
            t = nn.Tensor(d)
            return nn.supcon_loss(t, labels).item()

        for flat in [0, 7, 13]:
            index = np.unravel_index(flat, x_data.shape)
            numeric = finite_diff(lambda d: np.array(numpy_loss(d)), x_data, index)
            assert abs(analytic[index] - numeric) < 1e-5
