"""Arena allocator tests: buffer reuse, lifecycle, and allocation regression.

The arena's contract (see ``repro.nn.graph.Arena``): the first step is a
warmup that populates the keyed free lists (``arena_misses``); once shapes
are stable every request is a hit and the steady-state *fresh* allocation
rate (``graph_bytes`` + ``backward_bytes`` growth per step) drops sharply.
A shape change or an over-budget request simply declines and the caller
allocates normally — a fallback, never an error.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor
from repro.nn.graph import Arena


@pytest.fixture
def stats_on():
    previous = nn.set_tensor_stats(True)
    nn.reset_tensor_stats()
    yield
    nn.set_tensor_stats(previous)
    nn.reset_tensor_stats()


class TestArenaUnit:
    def test_small_requests_declined(self):
        arena = Arena(min_bytes=2048)
        # 4 float64s = 32 bytes: below the bookkeeping threshold.
        assert arena.request((2, 2), np.float64) is None

    def test_miss_then_hit_reuses_buffer(self, stats_on):
        arena = Arena(min_bytes=0)
        first = arena.request((64, 64), np.float64)
        assert first is not None
        arena.release_all()
        second = arena.request((64, 64), np.float64)
        assert second is first  # literally the same buffer, recycled
        stats = nn.tensor_stats()
        assert stats["arena_misses"] == 1
        assert stats["arena_hits"] == 1

    def test_shape_change_falls_back_to_fresh(self, stats_on):
        arena = Arena(min_bytes=0)
        arena.request((64, 64), np.float64)
        arena.release_all()
        other = arena.request((32, 32), np.float64)
        assert other is not None and other.shape == (32, 32)
        assert nn.tensor_stats()["arena_misses"] == 2
        assert nn.tensor_stats()["arena_hits"] == 0

    def test_dtype_keys_are_distinct(self):
        arena = Arena(min_bytes=0)
        a = arena.request((64, 64), np.float64)
        arena.release_all()
        b = arena.request((64, 64), np.float32)
        assert b is not a and b.dtype == np.float32

    def test_max_bytes_caps_footprint(self):
        nbytes = 64 * 64 * 8
        arena = Arena(min_bytes=0, max_bytes=nbytes)
        assert arena.request((64, 64), np.float64) is not None
        # Budget exhausted while the first buffer is still handed out.
        assert arena.request((64, 64), np.float64) is None
        arena.release_all()
        # Recycling does not count against the budget.
        assert arena.request((64, 64), np.float64) is not None

    def test_outstanding_buffers_not_reissued(self):
        arena = Arena(min_bytes=0)
        a = arena.request((64, 64), np.float64)
        b = arena.request((64, 64), np.float64)
        assert a is not b


def _train_steps(steps, rng_seed=0):
    """Fixed-shape MLP training steps; returns per-step fresh-byte deltas.

    The layer widths put activations and weight gradients well past the
    arena's ``min_bytes`` threshold (small buffers are deliberately left to
    the allocator — see ``Arena``'s docstring).
    """
    rng = np.random.default_rng(rng_seed)
    model = nn.MLP([256, 512, 1], np.random.default_rng(1))
    x = rng.normal(size=(64, 256))
    y = rng.normal(size=64)
    optimizer = nn.Adam(model.parameters(), lr=1e-3)
    deltas = []
    for _ in range(steps):
        before = nn.tensor_stats()
        optimizer.zero_grad()
        loss = nn.mse_loss(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
        after = nn.tensor_stats()
        deltas.append(
            (after["graph_bytes"] - before["graph_bytes"])
            + (after["backward_bytes"] - before["backward_bytes"])
        )
    return deltas


class TestSteadyState:
    def test_no_new_misses_after_warmup(self, stats_on):
        with nn.graph_scope():
            _train_steps(2)
            warm = nn.tensor_stats()
            _train_steps(4)
            steady = nn.tensor_stats()
        # Shapes are stable, so post-warmup steps never miss; they do hit.
        assert steady["arena_misses"] == warm["arena_misses"]
        assert steady["arena_hits"] > warm["arena_hits"]

    def test_shape_change_recovers(self, stats_on):
        model = nn.MLP([256, 512, 1], np.random.default_rng(1))
        optimizer = nn.Adam(model.parameters(), lr=1e-3)

        def step(batch):
            optimizer.zero_grad()
            loss = nn.mse_loss(model(Tensor(np.ones((batch, 256)))), np.ones(batch))
            loss.backward()
            optimizer.step()
            return float(loss.data)

        with nn.graph_scope():
            step(64)
            step(64)
            # A ragged last batch: new shapes miss (or fall below the size
            # threshold entirely) but training proceeds.
            value = step(7)
            assert np.isfinite(value)
            before = nn.tensor_stats()["arena_misses"]
            step(64)  # original shapes are still cached
            assert nn.tensor_stats()["arena_misses"] == before


class TestAllocationRegression:
    def test_steady_state_fresh_allocations_halved(self, stats_on):
        """Acceptance gate: with the arena on, steady-state fresh bytes per
        step drop by at least 2x versus plain allocation."""
        baseline = _train_steps(5)
        nn.reset_tensor_stats()
        with nn.graph_scope():
            arena_deltas = _train_steps(5)
        # Ignore the warmup steps on both sides; compare steady state.
        steady_off = min(baseline[2:])
        steady_on = max(arena_deltas[2:])
        assert steady_off >= 2 * max(steady_on, 1), (
            f"fresh bytes/step: off={steady_off} on={steady_on}"
        )

    def test_omnimatch_losses_identical_with_arena(self):
        """The arena must not perturb values: the same MLP trained with and
        without the graph optimizer produces bitwise-identical parameters."""

        def run(graph_on):
            model = nn.MLP([16, 32, 1], np.random.default_rng(2))
            optimizer = nn.SGD(model.parameters(), lr=0.05)
            x = np.random.default_rng(3).normal(size=(8, 16))
            scope = nn.graph_scope(enabled=graph_on)
            with scope:
                for _ in range(4):
                    optimizer.zero_grad()
                    loss = nn.mse_loss(model(Tensor(x)), np.zeros(8))
                    loss.backward()
                    optimizer.step()
            return [p.data.copy() for p in model.parameters()]

        for a, b in zip(run(False), run(True)):
            np.testing.assert_array_equal(a, b)
