"""Bit-identity and gradcheck suite for the tape-level graph optimizer.

Every auto-fused pattern must match the unfused reference tape *exactly*
(float32 bitwise), because `repro.nn.graph` promises replay-equivalence,
not tolerance-equivalence: the absorbed closures run with the same
gradients in the same order the composed reversed-postorder pass would
have used. Model-level tests extend the guarantee to the OmniMatch tower
(both extractors, all cold-inference modes), the BERT-ablation
transformer extractor, and two neural baselines.
"""

import contextlib

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor

from .gradcheck import gradcheck


@pytest.fixture
def float32():
    previous = nn.set_default_dtype("float32")
    yield
    nn.set_default_dtype(previous)


@pytest.fixture(params=[False, True], ids=["reference", "fast_math"])
def fast(request):
    previous = nn.set_fast_math(request.param)
    yield request.param
    nn.set_fast_math(previous)


def run_twice(build, steps=1):
    """Losses + grads of ``build`` with the graph optimizer off, then on."""

    def one(graph_on):
        graph = nn.GraphOptimizer() if graph_on else None
        previous = nn.set_graph_optimizer(graph)
        try:
            return build()
        finally:
            nn.set_graph_optimizer(previous)

    return one(False), one(True)


def assert_bitwise(a, b):
    assert a.dtype == b.dtype and a.shape == b.shape
    assert np.array_equal(a, b), f"max diff {np.abs(a - b).max()}"


class TestPatternBitIdentity:
    """Each auto-fused pattern: forward values and input/param gradients
    must be bitwise equal to the unfused tape (float32)."""

    def _check(self, make_inputs, fn):
        def build():
            inputs = make_inputs()
            out = fn(*inputs)
            loss = out.sum() if out.data.ndim else out
            loss.backward()
            return (
                out.data.copy(),
                [t.grad.copy() for t in inputs if t.grad is not None],
            )

        (val_a, grads_a), (val_b, grads_b) = run_twice(build)
        assert_bitwise(val_a, val_b)
        assert len(grads_a) == len(grads_b)
        for ga, gb in zip(grads_a, grads_b):
            assert_bitwise(ga, gb)

    def test_linear_relu(self, float32, fast):
        lin = nn.Linear(24, 16, np.random.default_rng(0))

        def make():
            lin.weight.grad = None
            lin.bias.grad = None
            rng = np.random.default_rng(1)
            return (Tensor(rng.normal(size=(8, 24)).astype(np.float32),
                           requires_grad=True),)

        self._check(make, lambda x: lin(x).relu())

    def test_conv_relu_maxpool(self, float32, fast):
        conv = nn.TextConv(
            embed_dim=12, num_filters=6, kernel_sizes=(2, 3),
            rng=np.random.default_rng(2), pooling="max",
        )

        def make():
            for p in conv.parameters():
                p.grad = None
            rng = np.random.default_rng(3)
            return (Tensor(rng.normal(size=(4, 10, 12)).astype(np.float32),
                           requires_grad=True),)

        self._check(make, conv)

    def test_softmax_nll(self, float32, fast):
        classes = np.random.default_rng(40).integers(0, 5, size=16)

        def make():
            rng = np.random.default_rng(4)
            return (Tensor(rng.normal(size=(16, 5)).astype(np.float32),
                           requires_grad=True),)

        self._check(make, lambda logits: nn.cross_entropy(logits, classes))

    def test_elementwise_chain(self, float32, fast):
        def make():
            rng = np.random.default_rng(5)
            return (Tensor(rng.uniform(0.5, 2.0, size=(32, 32)).astype(np.float32),
                           requires_grad=True),)

        self._check(make, lambda x: ((x * 2.0 + 1.0).log().sqrt() - x.exp() / 7.0))

    def test_residual_reuse_triggers_repair(self, float32, fast):
        """A residual connection re-consumes an activation a chain already
        absorbed — the repair path must keep gradients bitwise exact."""
        lin1 = nn.Linear(16, 16, np.random.default_rng(6))
        lin2 = nn.Linear(16, 16, np.random.default_rng(7))

        def make():
            for p in (*lin1.parameters(), *lin2.parameters()):
                p.grad = None
            rng = np.random.default_rng(8)
            return (Tensor(rng.normal(size=(8, 16)).astype(np.float32),
                           requires_grad=True),)

        def residual(x):
            h = lin1(x).relu()
            return (h + lin2(h).relu()).tanh()

        self._check(make, residual)

    def test_three_way_junction(self, float32, fast):
        """Three consumers of one activation: accumulation order (the
        non-associative part of float32 addition) must match the
        composed pass exactly."""
        def make():
            rng = np.random.default_rng(9)
            return (Tensor(rng.normal(size=(16, 16)).astype(np.float32),
                           requires_grad=True),)

        def fan_out(x):
            h = (x * 3.0).tanh()
            return (h.exp().sum() + (h * h).sum()) - (h / 2.0).sum()

        self._check(make, fan_out)


class TestTapeCollapse:
    """The visible tape IR shrinks: fused chains count once."""

    def test_linear_relu_single_node(self, float32):
        lin = nn.Linear(32, 16, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(8, 32)).astype(np.float32))
        plain = lin(x).relu()
        assert nn.tape_size(plain) == 4  # transpose, matmul, add, relu
        with nn.graph_scope():
            fused = lin(x).relu()
        assert nn.tape_size(fused) == 1
        assert dict(nn.tape_ops(fused)) == {"relu": 1}

    def test_cross_entropy_collapses(self, float32):
        rng = np.random.default_rng(2)
        logits = Tensor(rng.normal(size=(8, 5)).astype(np.float32),
                        requires_grad=True)
        classes = rng.integers(0, 5, size=8)
        was_fast = nn.set_fast_math(False)
        try:
            plain = nn.cross_entropy(logits, classes)
            with nn.graph_scope():
                fused = nn.cross_entropy(
                    Tensor(logits.data.copy(), requires_grad=True), classes
                )
        finally:
            nn.set_fast_math(was_fast)
        assert nn.tape_size(fused) < nn.tape_size(plain)

    def test_fused_ops_counter(self, float32):
        previous = nn.set_tensor_stats(True)
        nn.reset_tensor_stats()
        try:
            lin = nn.Linear(16, 8, np.random.default_rng(3))
            x = Tensor(np.random.default_rng(4).normal(size=(4, 16)).astype(np.float32))
            with nn.graph_scope():
                _ = lin(x).relu()
            assert nn.tensor_stats()["fused_ops"] >= 3
        finally:
            nn.set_tensor_stats(previous)
            nn.reset_tensor_stats()


class TestGradcheckUnderGraph:
    """Finite-difference gradcheck (float64) with the optimizer installed:
    fused replay must still produce analytically correct gradients."""

    def _gradcheck(self, fn, inputs):
        with nn.graph_scope():
            assert gradcheck(fn, inputs)

    def test_linear_relu(self):
        lin = nn.Linear(5, 4, np.random.default_rng(0))
        x = Tensor(np.random.default_rng(1).normal(size=(3, 5)),
                   requires_grad=True, dtype=np.float64)
        self._gradcheck(lambda t: lin(t).relu(), [x])

    def test_conv_chain(self):
        conv = nn.TextConv(embed_dim=4, num_filters=3, kernel_sizes=(2,),
                           rng=np.random.default_rng(2), pooling="max")
        x = Tensor(np.random.default_rng(3).normal(size=(2, 6, 4)),
                   requires_grad=True, dtype=np.float64)
        self._gradcheck(conv, [x])

    def test_softmax_nll(self):
        classes = np.array([0, 2, 1])
        x = Tensor(np.random.default_rng(4).normal(size=(3, 4)),
                   requires_grad=True, dtype=np.float64)
        self._gradcheck(lambda t: nn.cross_entropy(t, classes), [x])

    def test_elementwise_chain(self):
        x = Tensor(np.random.default_rng(5).uniform(0.5, 2.0, size=(4, 4)),
                   requires_grad=True, dtype=np.float64)
        self._gradcheck(lambda t: (t * 2.0 + 1.0).log().sqrt(), [x])

    def test_residual_repair(self):
        lin = nn.Linear(4, 4, np.random.default_rng(6))
        x = Tensor(np.random.default_rng(7).normal(size=(3, 4)),
                   requires_grad=True, dtype=np.float64)
        self._gradcheck(lambda t: (t + lin(t).relu()).tanh(), [x])


def small_model(extractor, mode):
    from repro.core import OmniMatchConfig, OmniMatchModel

    cfg = OmniMatchConfig(
        embed_dim=16, num_filters=4, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=12, dropout=0.1,
        vocab_size=40, extractor=extractor, cold_inference=mode,
    )
    table = np.random.default_rng(0).normal(0, 0.1, size=(40, cfg.embed_dim))
    table = table.astype(np.float32)
    table[0] = 0.0
    return OmniMatchModel(table, cfg, np.random.default_rng(1))


def train_steps(model, graph_on, steps=3):
    model.train()
    optimizer = nn.Adadelta(model.parameters())
    previous = nn.set_graph_optimizer(nn.GraphOptimizer() if graph_on else None)
    losses_log = []
    try:
        for step in range(steps):
            rng = np.random.default_rng(100 + step)
            optimizer.zero_grad()
            losses = model.compute_losses(
                rng.integers(1, 40, size=(8, 12)),
                rng.integers(1, 40, size=(8, 12)),
                rng.integers(1, 40, size=(8, 12)),
                rng.integers(0, 5, size=8),
            )
            losses["total"].backward()
            nn.clip_grad_norm(model.parameters(), 5.0)
            optimizer.step()
            losses_log.append({k: float(v.item()) for k, v in losses.items()})
    finally:
        nn.set_graph_optimizer(previous)
    return losses_log, {n: p.data.copy() for n, p in model.named_parameters()}


class TestOmniMatchBitIdentity:
    """Three full Adadelta training steps of the OmniMatch tower must be
    bit-identical with and without the graph optimizer — for the paper's
    CNN extractor, the BERT-ablation transformer extractor, and every
    cold-inference mode."""

    @pytest.mark.parametrize("extractor", ["cnn", "transformer"])
    @pytest.mark.parametrize("mode", ["blend", "dual", "aux_only"])
    def test_training_bit_identical(self, float32, extractor, mode):
        was_fast = nn.set_fast_math(True)
        try:
            losses_off, params_off = train_steps(small_model(extractor, mode), False)
            losses_on, params_on = train_steps(small_model(extractor, mode), True)
        finally:
            nn.set_fast_math(was_fast)
        assert losses_off == losses_on
        assert params_off.keys() == params_on.keys()
        for name in params_off:
            assert np.array_equal(params_off[name], params_on[name]), name


class _NullScope(contextlib.nullcontext):
    def __init__(self, *args, **kwargs):
        super().__init__()


@pytest.fixture(scope="module")
def baseline_world():
    from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

    dataset = generate_domain_pair(
        "books", "movies",
        GeneratorConfig(num_users=60, num_items_per_domain=25,
                        reviews_per_user_mean=4.0, seed=11),
    )
    return dataset, cold_start_split(dataset, seed=2)


class TestBaselineBitIdentity:
    """The baselines train under ``nn.graph_scope()``; disabling the scope
    (monkeypatched to a null context) must not change a single bit."""

    def test_deepconn(self, float32, baseline_world, monkeypatch):
        from repro.baselines import DeepCoNN

        dataset, split = baseline_world
        fused = DeepCoNN(epochs=2, embed_dim=12, num_filters=4,
                         doc_len=16).fit(dataset, split)
        monkeypatch.setattr(nn, "graph_scope", _NullScope)
        plain = DeepCoNN(epochs=2, embed_dim=12, num_filters=4,
                         doc_len=16).fit(dataset, split)
        for pf, pp in zip(fused._parameters(), plain._parameters()):
            assert np.array_equal(pf.data, pp.data)

    def test_emcdr(self, float32, baseline_world, monkeypatch):
        from repro.baselines import EMCDR

        dataset, split = baseline_world
        fused = EMCDR().fit(dataset, split)
        monkeypatch.setattr(nn, "graph_scope", _NullScope)
        plain = EMCDR().fit(dataset, split)
        for pf, pp in zip(fused._mapping.parameters(), plain._mapping.parameters()):
            assert np.array_equal(pf.data, pp.data)
