"""Unit tests for loss functions, especially the supervised contrastive loss."""

import numpy as np
import pytest

import repro.nn as nn


class TestMSE:
    def test_value(self):
        pred = nn.Tensor([1.0, 2.0, 3.0])
        assert nn.mse_loss(pred, np.array([1.0, 2.0, 5.0])).item() == pytest.approx(4.0 / 3.0)

    def test_zero_at_perfect(self):
        pred = nn.Tensor([1.0, 2.0])
        assert nn.mse_loss(pred, np.array([1.0, 2.0])).item() == 0.0

    def test_gradient(self):
        pred = nn.Tensor([3.0], requires_grad=True)
        nn.mse_loss(pred, np.array([1.0])).backward()
        np.testing.assert_allclose(pred.grad, [4.0])

    def test_accepts_tensor_target(self):
        assert nn.mse_loss(nn.Tensor([1.0]), nn.Tensor([0.0])).item() == 1.0

    def test_module_form(self):
        loss = nn.MSELoss()
        assert loss(nn.Tensor([2.0]), np.array([0.0])).item() == 4.0


class TestCrossEntropy:
    def test_uniform_logits_give_log_n(self):
        logits = nn.Tensor(np.zeros((4, 5)))
        labels = np.array([0, 1, 2, 3])
        assert nn.cross_entropy(logits, labels).item() == pytest.approx(np.log(5))

    def test_confident_correct_near_zero(self):
        logits_data = np.full((2, 3), -100.0)
        logits_data[0, 1] = 100.0
        logits_data[1, 2] = 100.0
        loss = nn.cross_entropy(nn.Tensor(logits_data), np.array([1, 2]))
        assert loss.item() < 1e-6

    def test_confident_wrong_is_large(self):
        logits_data = np.array([[50.0, -50.0]])
        assert nn.cross_entropy(nn.Tensor(logits_data), np.array([1])).item() > 50

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            nn.cross_entropy(nn.Tensor(np.zeros(4)), np.array([0]))
        with pytest.raises(ValueError):
            nn.cross_entropy(nn.Tensor(np.zeros((2, 3))), np.array([0]))

    def test_gradient_is_softmax_minus_onehot(self):
        logits = nn.Tensor(np.zeros((1, 3)), requires_grad=True)
        nn.cross_entropy(logits, np.array([0])).backward()
        np.testing.assert_allclose(logits.grad, [[1 / 3 - 1, 1 / 3, 1 / 3]], atol=1e-12)

    def test_module_form(self):
        loss = nn.CrossEntropyLoss()
        assert loss(nn.Tensor(np.zeros((1, 2))), np.array([0])).item() == pytest.approx(np.log(2))


class TestSupConLoss:
    def test_zero_when_no_positive_pairs(self):
        z = nn.Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        loss = nn.supcon_loss(z, np.array([0, 1, 2]))
        assert loss.item() == 0.0

    def test_zero_for_single_sample(self):
        loss = nn.supcon_loss(nn.Tensor(np.ones((1, 4))), np.array([0]))
        assert loss.item() == 0.0

    def test_clustered_features_have_lower_loss(self):
        rng = np.random.default_rng(0)
        labels = np.array([0, 0, 0, 1, 1, 1])
        centers = np.array([[10.0, 0.0], [0.0, 10.0]])
        clustered = centers[labels] + rng.normal(0, 0.01, size=(6, 2))
        random = rng.normal(size=(6, 2))
        loss_clustered = nn.supcon_loss(nn.Tensor(clustered), labels).item()
        loss_random = nn.supcon_loss(nn.Tensor(random), labels).item()
        assert loss_clustered < loss_random

    def test_permutation_invariance(self):
        rng = np.random.default_rng(1)
        z_data = rng.normal(size=(6, 4))
        labels = np.array([0, 0, 1, 1, 2, 2])
        base = nn.supcon_loss(nn.Tensor(z_data), labels).item()
        perm = rng.permutation(6)
        permuted = nn.supcon_loss(nn.Tensor(z_data[perm]), labels[perm]).item()
        assert base == pytest.approx(permuted, rel=1e-9)

    def test_scale_invariance_from_normalization(self):
        z_data = np.random.default_rng(2).normal(size=(4, 3))
        labels = np.array([0, 0, 1, 1])
        a = nn.supcon_loss(nn.Tensor(z_data), labels).item()
        b = nn.supcon_loss(nn.Tensor(z_data * 100), labels).item()
        assert a == pytest.approx(b, rel=1e-6)

    def test_temperature_changes_loss(self):
        z = nn.Tensor(np.random.default_rng(3).normal(size=(4, 3)))
        labels = np.array([0, 0, 1, 1])
        a = nn.supcon_loss(z, labels, temperature=0.07).item()
        b = nn.supcon_loss(z, labels, temperature=1.0).item()
        assert a != pytest.approx(b)

    def test_mismatched_labels_raise(self):
        with pytest.raises(ValueError):
            nn.supcon_loss(nn.Tensor(np.ones((3, 2))), np.array([0, 1]))

    def test_gradient_pulls_positives_together(self):
        # two same-label points on a plane: gradient should rotate them closer
        z_data = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, -1.0]])
        labels = np.array([0, 0, 1])
        z = nn.Tensor(z_data, requires_grad=True)
        nn.supcon_loss(z, labels).backward()
        step = z_data - 0.1 * z.grad
        cos_before = z_data[0] @ z_data[1] / (
            np.linalg.norm(z_data[0]) * np.linalg.norm(z_data[1])
        )
        cos_after = step[0] @ step[1] / (np.linalg.norm(step[0]) * np.linalg.norm(step[1]))
        assert cos_after > cos_before

    def test_module_validates_temperature(self):
        with pytest.raises(ValueError):
            nn.SupConLoss(temperature=0.0)

    def test_module_form_matches_function(self):
        z = nn.Tensor(np.random.default_rng(4).normal(size=(4, 3)))
        labels = np.array([0, 1, 0, 1])
        module = nn.SupConLoss(temperature=0.07)
        assert module(z, labels).item() == pytest.approx(
            nn.supcon_loss(z, labels, temperature=0.07).item()
        )
