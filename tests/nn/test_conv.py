"""Unit tests for the text convolution and pooling layers."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn.conv import conv1d_text, max_over_time, mean_over_time


RNG = lambda seed=0: np.random.default_rng(seed)


def naive_conv(x, weight, bias=None):
    batch, seq, emb = x.shape
    f, k, _ = weight.shape
    out = np.zeros((batch, seq - k + 1, f))
    for b in range(batch):
        for t in range(seq - k + 1):
            for j in range(f):
                out[b, t, j] = (x[b, t : t + k] * weight[j]).sum()
    if bias is not None:
        out += bias
    return out


class TestConv1dText:
    def test_matches_naive_implementation(self):
        rng = RNG()
        x = rng.normal(size=(3, 9, 4))
        w = rng.normal(size=(5, 3, 4))
        b = rng.normal(size=5)
        out = conv1d_text(nn.Tensor(x), nn.Tensor(w), nn.Tensor(b))
        np.testing.assert_allclose(out.data, naive_conv(x, w, b), atol=1e-12)

    def test_output_length(self):
        out = conv1d_text(nn.Tensor(np.zeros((1, 10, 2))), nn.Tensor(np.zeros((3, 4, 2))))
        assert out.shape == (1, 7, 3)

    def test_kernel_longer_than_sequence_raises(self):
        with pytest.raises(ValueError):
            conv1d_text(nn.Tensor(np.zeros((1, 3, 2))), nn.Tensor(np.zeros((1, 5, 2))))

    def test_embedding_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            conv1d_text(nn.Tensor(np.zeros((1, 5, 2))), nn.Tensor(np.zeros((1, 3, 4))))

    def test_input_gradient_shape(self):
        x = nn.Tensor(RNG().normal(size=(2, 8, 3)), requires_grad=True)
        w = nn.Parameter(RNG(1).normal(size=(4, 3, 3)))
        conv1d_text(x, w).sum().backward()
        assert x.grad.shape == (2, 8, 3)
        assert w.grad.shape == (4, 3, 3)

    def test_bias_gradient(self):
        x = nn.Tensor(np.zeros((2, 6, 3)))
        w = nn.Parameter(np.zeros((4, 3, 3)))
        b = nn.Parameter(np.zeros(4))
        conv1d_text(x, w, b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(4, 2 * 4.0))  # batch * T


class TestPooling:
    def test_max_over_time(self):
        x = nn.Tensor(np.array([[[1.0, 5.0], [3.0, 2.0]]]))
        np.testing.assert_allclose(max_over_time(x).data, [[3.0, 5.0]])

    def test_mean_over_time_unweighted(self):
        x = nn.Tensor(np.array([[[2.0], [4.0]]]))
        np.testing.assert_allclose(mean_over_time(x).data, [[3.0]])

    def test_mean_over_time_weighted_ignores_masked(self):
        x = nn.Tensor(np.array([[[2.0], [100.0]]]))
        weights = np.array([[1.0, 0.0]])
        np.testing.assert_allclose(mean_over_time(x, weights).data, [[2.0]])

    def test_mean_over_time_all_masked_is_finite(self):
        x = nn.Tensor(np.ones((1, 3, 2)))
        out = mean_over_time(x, np.zeros((1, 3))).data
        assert np.isfinite(out).all()

    def test_mean_weight_shape_validated(self):
        with pytest.raises(ValueError):
            mean_over_time(nn.Tensor(np.ones((1, 3, 2))), np.ones((2, 3)))


class TestTextConv:
    def test_output_dim_max(self):
        conv = nn.TextConv(8, 5, (3, 4, 5), RNG(), pooling="max")
        assert conv.output_dim == 15

    def test_output_dim_max_mean(self):
        conv = nn.TextConv(8, 5, (3, 4), RNG(), pooling="max_mean")
        assert conv.output_dim == 20

    def test_forward_shape(self):
        conv = nn.TextConv(6, 4, (2, 3), RNG(), pooling="max_mean")
        out = conv(nn.Tensor(np.zeros((3, 10, 6))))
        assert out.shape == (3, conv.output_dim)

    def test_invalid_pooling_raises(self):
        with pytest.raises(ValueError):
            nn.TextConv(4, 2, (3,), RNG(), pooling="sum")

    def test_empty_kernel_sizes_raises(self):
        with pytest.raises(ValueError):
            nn.TextConv(4, 2, (), RNG())

    def test_token_mask_changes_mean_pool(self):
        conv = nn.TextConv(4, 2, (2,), RNG(), pooling="mean")
        x = nn.Tensor(RNG(3).normal(size=(1, 6, 4)))
        full = conv(x, token_mask=np.ones((1, 6), dtype=bool)).data
        half = conv(x, token_mask=np.array([[1, 1, 1, 0, 0, 0]], dtype=bool)).data
        assert not np.allclose(full, half)

    def test_gradients_reach_all_kernels(self):
        conv = nn.TextConv(4, 2, (2, 3), RNG())
        conv(nn.Tensor(RNG(1).normal(size=(2, 7, 4)))).sum().backward()
        for k in (2, 3):
            assert getattr(conv, f"weight_k{k}").grad is not None

    def test_window_weights_fraction(self):
        mask = np.array([[1, 1, 0, 0]], dtype=np.float64)
        w = nn.TextConv._window_weights(mask, 2)
        np.testing.assert_allclose(w, [[1.0, 0.5, 0.0]])

    def test_interleaved_same_shape_convs_grads_match_legacy(self):
        """Two same-shaped convs share a workspace pool; the second forward
        clobbers the first's columns, forcing the stamped-buffer fallback in
        backward. Gradients must match the legacy path regardless."""
        rng = RNG(22)
        x1 = rng.normal(size=(2, 9, 4))
        x2 = rng.normal(size=(2, 9, 4))
        w1 = rng.normal(size=(3, 3, 4))
        w2 = rng.normal(size=(3, 3, 4))
        grads = {}
        for fast in (True, False):
            previous = nn.set_fast_math(fast)
            try:
                nn.clear_conv_workspace()
                tensors = [nn.Tensor(a.copy(), requires_grad=True) for a in (x1, x2, w1, w2)]
                t_x1, t_x2, t_w1, t_w2 = tensors
                out = (nn.conv1d_text(t_x1, t_w1) + nn.conv1d_text(t_x2, t_w2)).sum()
                out.backward()
                grads[fast] = [t.grad for t in tensors]
            finally:
                nn.set_fast_math(previous)
        for fast_grad, legacy_grad in zip(grads[True], grads[False]):
            np.testing.assert_allclose(fast_grad, legacy_grad, rtol=1e-9, atol=1e-11)

    def test_window_weights_from_cumsum_matches_reference(self):
        mask = (RNG(21).random(size=(3, 11)) < 0.6).astype(np.float32)
        cumsum = mask.cumsum(axis=1)
        for k in (1, 2, 3, 5):
            reference = nn.TextConv._window_weights(mask, k)
            fast = nn.TextConv._window_weights_from_cumsum(cumsum, k)
            np.testing.assert_array_equal(fast, reference)

    def test_translation_of_pad_does_not_change_max(self):
        """Max pooling over a detected n-gram is position-invariant."""
        conv = nn.TextConv(3, 2, (2,), RNG(7), pooling="max")
        signal = RNG(8).normal(size=(2, 3))
        doc1 = np.zeros((1, 8, 3))
        doc1[0, 1:3] = signal
        doc2 = np.zeros((1, 8, 3))
        doc2[0, 5:7] = signal
        out1 = conv(nn.Tensor(doc1)).data
        out2 = conv(nn.Tensor(doc2)).data
        # the max over positions sees the same windows (zeros + signal)
        np.testing.assert_allclose(out1, out2, atol=1e-12)
