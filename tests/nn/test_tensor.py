"""Unit tests for the autograd tensor engine."""

import numpy as np
import pytest

from repro.nn import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack


class TestTensorBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.data.dtype == np.float64

    def test_construction_from_scalar(self):
        t = Tensor(2.5)
        assert t.item() == 2.5
        assert t.size == 1

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_coerces_scalar(self):
        assert isinstance(as_tensor(3.0), Tensor)

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_transpose_property(self):
        t = Tensor(np.ones((2, 3)))
        assert t.T.shape == (3, 2)


class TestArithmeticGradients:
    def _grad(self, fn, x_data):
        x = Tensor(x_data, requires_grad=True)
        fn(x).sum().backward()
        return x.grad

    def test_add_grad(self):
        g = self._grad(lambda x: x + 2.0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(g, [1.0, 1.0])

    def test_radd_grad(self):
        g = self._grad(lambda x: 2.0 + x, np.array([1.0, 2.0]))
        np.testing.assert_allclose(g, [1.0, 1.0])

    def test_sub_grad(self):
        g = self._grad(lambda x: x - 3.0, np.array([1.0]))
        np.testing.assert_allclose(g, [1.0])

    def test_rsub_grad(self):
        g = self._grad(lambda x: 3.0 - x, np.array([1.0]))
        np.testing.assert_allclose(g, [-1.0])

    def test_mul_grad(self):
        g = self._grad(lambda x: x * 4.0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(g, [4.0, 4.0])

    def test_div_grad(self):
        g = self._grad(lambda x: x / 2.0, np.array([3.0]))
        np.testing.assert_allclose(g, [0.5])

    def test_rdiv_grad(self):
        g = self._grad(lambda x: 6.0 / x, np.array([2.0]))
        np.testing.assert_allclose(g, [-1.5])

    def test_neg_grad(self):
        g = self._grad(lambda x: -x, np.array([1.0]))
        np.testing.assert_allclose(g, [-1.0])

    def test_pow_grad(self):
        g = self._grad(lambda x: x**3, np.array([2.0]))
        np.testing.assert_allclose(g, [12.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0], requires_grad=True) ** Tensor([2.0])

    def test_diamond_graph_accumulates(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0  # x used twice
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_tensor_times_tensor_grads_both(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, [5.0])
        np.testing.assert_allclose(b.grad, [2.0])


class TestBroadcasting:
    def test_broadcast_add_bias(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert x.grad.shape == (4, 3)
        np.testing.assert_allclose(b.grad, [4.0, 4.0, 4.0])

    def test_broadcast_mul_column(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        c = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        (x * c).sum().backward()
        np.testing.assert_allclose(c.grad, [[3.0], [3.0]])

    def test_broadcast_scalar_tensor(self):
        s = Tensor(2.0, requires_grad=True)
        x = Tensor(np.ones((2, 2)))
        (x * s).sum().backward()
        np.testing.assert_allclose(s.grad, 4.0)


class TestMatmul:
    def test_matmul_2d_values(self):
        a = Tensor([[1.0, 2.0], [3.0, 4.0]])
        b = Tensor([[5.0, 6.0], [7.0, 8.0]])
        np.testing.assert_allclose((a @ b).data, np.array([[19, 22], [43, 50]]))

    def test_matmul_grads(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_matmul_batched(self):
        a = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        b = Tensor(np.ones((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_matvec(self):
        a = Tensor(np.eye(3), requires_grad=True)
        v = Tensor(np.array([1.0, 2.0, 3.0]))
        out = a @ v
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])
        out.sum().backward()
        assert a.grad.shape == (3, 3)


class TestNonlinearities:
    @pytest.mark.parametrize(
        "name,fn,dfn",
        [
            ("exp", np.exp, np.exp),
            ("tanh", np.tanh, lambda x: 1 - np.tanh(x) ** 2),
            ("sigmoid", lambda x: 1 / (1 + np.exp(-x)), None),
        ],
    )
    def test_unary_values(self, name, fn, dfn):
        x_data = np.array([-1.0, 0.5, 2.0])
        x = Tensor(x_data, requires_grad=True)
        out = getattr(x, name)()
        np.testing.assert_allclose(out.data, fn(x_data), rtol=1e-12)

    def test_relu_forward_backward(self):
        x = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.0, 1.0])

    def test_log_grad(self):
        x = Tensor([2.0], requires_grad=True)
        x.log().backward()
        np.testing.assert_allclose(x.grad, [0.5])

    def test_sqrt_grad(self):
        x = Tensor([4.0], requires_grad=True)
        x.sqrt().backward()
        np.testing.assert_allclose(x.grad, [0.25])

    def test_abs_grad(self):
        x = Tensor([-2.0, 3.0], requires_grad=True)
        x.abs().sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, 1.0])


class TestReductions:
    def test_sum_all(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        out = x.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_grad(self):
        x = Tensor(np.ones(4), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full(4, 0.25))

    def test_mean_axis_tuple(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        out = x.mean(axis=(0, 2))
        assert out.shape == (3,)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3, 4), 1.0 / 8.0))

    def test_max_grad_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        # Tie-splitting is the reference-path behavior; fast math routes the
        # whole gradient to the first argmax (both are valid subgradients).
        import repro.nn as nn

        previous = nn.set_fast_math(False)
        try:
            x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
            x.max(axis=1).sum().backward()
            np.testing.assert_allclose(x.grad, [[0.5, 0.5]])
        finally:
            nn.set_fast_math(previous)

    def test_max_ties_fast_math_picks_argmax(self):
        import repro.nn as nn

        previous = nn.set_fast_math(True)
        try:
            x = Tensor(np.array([[3.0, 3.0]]), requires_grad=True)
            x.max(axis=1).sum().backward()
            np.testing.assert_allclose(x.grad, [[1.0, 0.0]])
        finally:
            nn.set_fast_math(previous)

    def test_min(self):
        x = Tensor(np.array([[4.0, 1.0]]), requires_grad=True)
        out = x.min(axis=1)
        np.testing.assert_allclose(out.data, [1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0]])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        assert x.grad.shape == (6,)

    def test_reshape_accepts_tuple(self):
        x = Tensor(np.arange(6.0))
        assert x.reshape((3, 2)).shape == (3, 2)

    def test_transpose_grad(self):
        x = Tensor(np.ones((2, 3, 4)), requires_grad=True)
        x.transpose((2, 0, 1)).sum().backward()
        assert x.grad.shape == (2, 3, 4)

    def test_getitem_grad_scatters(self):
        x = Tensor(np.arange(5.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0, 0.0])

    def test_take_rows_embedding_gather(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([[0, 1], [1, 3]])
        out = table.take_rows(idx)
        assert out.shape == (2, 2, 3)
        out.sum().backward()
        np.testing.assert_allclose(table.grad[:, 0], [1.0, 2.0, 0.0, 1.0])

    def test_concat_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = concat([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_concat_axis0(self):
        a = Tensor(np.ones((1, 2)), requires_grad=True)
        b = Tensor(np.zeros((3, 2)))
        assert concat([a, b], axis=0).shape == (4, 2)

    def test_stack(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))


class TestBackwardSemantics:
    def test_backward_on_nonscalar_requires_grad_arg(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_with_explicit_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_allclose(x.grad, [2.0, 4.0, 6.0])

    def test_backward_without_grad_flag_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_context(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            x = Tensor([1.0], requires_grad=True)
            y = x * 2.0
            assert not y.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nests(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()

    def test_deep_chain_backward(self):
        # iterative topo-sort must handle long chains without recursion limits
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(500):
            y = y + 1.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_comparison_returns_array(self):
        x = Tensor([1.0, 3.0])
        assert (x > 2.0).tolist() == [False, True]
        assert (x < 2.0).tolist() == [True, False]
