"""Unit tests for parameter initializers."""

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_shape_fans(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_shape_fans(self):
        # (filters, kernel, embed): receptive field multiplies
        fan_in, fan_out = init._fan_in_out((16, 3, 8))
        assert fan_in == 3 * 8
        assert fan_out == 16 * 8

    def test_vector_shape(self):
        assert init._fan_in_out((5,)) == (5, 5)

    def test_scalar_rejected(self):
        with pytest.raises(ValueError):
            init._fan_in_out(())


class TestDistributions:
    def test_xavier_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng)
        bound = np.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound

    def test_xavier_gain_scales(self):
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
        a = init.xavier_uniform((10, 10), rng1, gain=1.0)
        b = init.xavier_uniform((10, 10), rng2, gain=2.0)
        np.testing.assert_allclose(b, 2 * a)

    def test_kaiming_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 32), rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 32)

    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.normal((200, 200), rng, std=0.5)
        assert abs(w.std() - 0.5) < 0.02

    def test_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.uniform((50, 50), rng, bound=0.1)
        assert np.abs(w).max() <= 0.1

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 4)), 0.0)

    def test_deterministic_with_same_rng_state(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(42))
        b = init.xavier_uniform((5, 5), np.random.default_rng(42))
        np.testing.assert_allclose(a, b)
