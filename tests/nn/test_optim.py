"""Unit tests for optimizers: convergence and mechanical behavior."""

import numpy as np
import pytest

import repro.nn as nn


def quadratic_problem(seed=0):
    """Minimize ||x - target||^2 starting from zero."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=5)
    param = nn.Parameter(np.zeros(5))
    return param, target


def loss_of(param, target):
    diff = param - nn.Tensor(target)
    return (diff * diff).sum()


class TestConvergence:
    @pytest.mark.parametrize(
        "make_optimizer,steps",
        [
            (lambda p: nn.SGD([p], lr=0.1), 200),
            (lambda p: nn.SGD([p], lr=0.05, momentum=0.9), 200),
            (lambda p: nn.Adam([p], lr=0.05), 400),
            (lambda p: nn.Adadelta([p], lr=1.0), 800),
        ],
    )
    def test_reaches_optimum(self, make_optimizer, steps):
        param, target = quadratic_problem()
        optimizer = make_optimizer(param)
        for _ in range(steps):
            optimizer.zero_grad()
            loss_of(param, target).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, target, atol=0.05)

    def test_adadelta_paper_settings_make_progress(self):
        param, target = quadratic_problem()
        optimizer = nn.Adadelta([param], lr=0.02, rho=0.95)
        initial = loss_of(param, target).item()
        for _ in range(100):
            optimizer.zero_grad()
            loss_of(param, target).backward()
            optimizer.step()
        assert loss_of(param, target).item() < initial


class TestMechanics:
    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.1)

    @pytest.mark.parametrize("cls,kwargs", [
        (nn.SGD, {"lr": -1}),
        (nn.Adam, {"lr": 0}),
        (nn.Adadelta, {"lr": -0.1}),
        (nn.Adadelta, {"rho": 1.5}),
    ])
    def test_invalid_hyperparameters(self, cls, kwargs):
        with pytest.raises(ValueError):
            cls([nn.Parameter(np.zeros(2))], **kwargs)

    def test_zero_grad_clears(self):
        param = nn.Parameter(np.ones(3))
        optimizer = nn.SGD([param], lr=0.1)
        (param * 2.0).sum().backward()
        optimizer.zero_grad()
        assert param.grad is None

    def test_step_skips_parameters_without_grad(self):
        a = nn.Parameter(np.ones(2))
        b = nn.Parameter(np.ones(2))
        optimizer = nn.SGD([a, b], lr=0.5)
        (a * 1.0).sum().backward()
        before = b.data.copy()
        optimizer.step()
        np.testing.assert_allclose(b.data, before)
        assert not np.allclose(a.data, np.ones(2))

    def test_weight_decay_shrinks_weights(self):
        param = nn.Parameter(np.full(3, 10.0))
        optimizer = nn.SGD([param], lr=0.1, weight_decay=0.5)
        param.grad = np.zeros(3)
        optimizer.step()
        assert (np.abs(param.data) < 10.0).all()

    def test_adam_bias_correction_first_step(self):
        # after one step with grad g, update magnitude should be ~lr
        param = nn.Parameter(np.zeros(1))
        optimizer = nn.Adam([param], lr=0.1)
        param.grad = np.array([1.0])
        optimizer.step()
        np.testing.assert_allclose(param.data, [-0.1], atol=1e-6)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        param = nn.Parameter(np.zeros(3))
        param.grad = np.array([0.1, 0.1, 0.1])
        norm = nn.clip_grad_norm([param], max_norm=10.0)
        np.testing.assert_allclose(param.grad, [0.1, 0.1, 0.1])
        assert norm == pytest.approx(np.sqrt(0.03))

    def test_clips_to_max_norm(self):
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])  # norm 5
        nn.clip_grad_norm([param], max_norm=1.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_handles_no_grads(self):
        assert nn.clip_grad_norm([nn.Parameter(np.zeros(2))], 1.0) == 0.0

    def test_global_norm_across_parameters(self):
        a = nn.Parameter(np.zeros(1))
        b = nn.Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        norm = nn.clip_grad_norm([a, b], max_norm=5.0)
        assert norm == pytest.approx(5.0)
        np.testing.assert_allclose(a.grad, [3.0])  # exactly at threshold: untouched
