"""Unit tests for ``repro.nn.functional``."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import functional as F


class TestSoftmaxFamily:
    def test_softmax_rows_sum_to_one(self):
        x = nn.Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)

    def test_softmax_matches_scipy_style(self):
        x_data = np.array([[1.0, 2.0, 3.0]])
        expected = np.exp(x_data) / np.exp(x_data).sum()
        np.testing.assert_allclose(F.softmax(nn.Tensor(x_data)).data, expected, atol=1e-12)

    def test_softmax_stable_for_large_logits(self):
        x = nn.Tensor(np.array([[1000.0, 1001.0]]))
        probs = F.softmax(x).data
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs.sum(), 1.0)

    def test_log_softmax_matches_log_of_softmax(self):
        x = nn.Tensor(np.random.default_rng(1).normal(size=(3, 5)))
        np.testing.assert_allclose(
            F.log_softmax(x).data, np.log(F.softmax(x).data), atol=1e-10
        )

    def test_logsumexp_matches_numpy(self):
        x_data = np.random.default_rng(2).normal(size=(3, 4))
        expected = np.log(np.exp(x_data).sum(axis=-1))
        np.testing.assert_allclose(
            F.logsumexp(nn.Tensor(x_data), axis=-1).data, expected, atol=1e-10
        )

    def test_logsumexp_keepdims(self):
        x = nn.Tensor(np.ones((2, 3)))
        assert F.logsumexp(x, axis=-1, keepdims=True).shape == (2, 1)

    def test_softmax_axis0(self):
        x = nn.Tensor(np.random.default_rng(3).normal(size=(4, 2)))
        probs = F.softmax(x, axis=0).data
        np.testing.assert_allclose(probs.sum(axis=0), np.ones(2), atol=1e-12)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = nn.Tensor(np.ones(100))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_rate_is_identity(self):
        x = nn.Tensor(np.ones(10))
        out = F.dropout(x, 0.0, np.random.default_rng(0), training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_training_scales_kept_units(self):
        x = nn.Tensor(np.ones(10000))
        out = F.dropout(x, 0.4, np.random.default_rng(0), training=True).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 1.0 / 0.6)
        # expectation preserved
        assert abs(out.mean() - 1.0) < 0.05

    def test_invalid_rate_raises(self):
        with pytest.raises(ValueError):
            F.dropout(nn.Tensor([1.0]), 1.0, np.random.default_rng(0))

    def test_gradient_masked_consistently(self):
        x = nn.Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        out.sum().backward()
        zero_fwd = out.data == 0
        np.testing.assert_allclose(x.grad[zero_fwd], 0.0)


class TestGradientReversal:
    def test_forward_identity(self):
        x = nn.Tensor([1.0, -2.0])
        np.testing.assert_allclose(F.gradient_reversal(x).data, x.data)

    def test_backward_negates(self):
        x = nn.Tensor([1.0, 2.0], requires_grad=True)
        F.gradient_reversal(x, lam=1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_lambda_scales(self):
        x = nn.Tensor([1.0], requires_grad=True)
        F.gradient_reversal(x, lam=3.0).sum().backward()
        np.testing.assert_allclose(x.grad, [-3.0])

    def test_composes_with_downstream(self):
        x = nn.Tensor([2.0], requires_grad=True)
        (F.gradient_reversal(x) * 5.0).sum().backward()
        np.testing.assert_allclose(x.grad, [-5.0])


class TestL2Normalize:
    def test_rows_unit_norm(self):
        x = nn.Tensor(np.random.default_rng(0).normal(size=(5, 4)) * 10)
        out = F.l2_normalize(x).data
        np.testing.assert_allclose(np.linalg.norm(out, axis=-1), np.ones(5), atol=1e-9)

    def test_zero_vector_stays_finite(self):
        out = F.l2_normalize(nn.Tensor(np.zeros((1, 3)))).data
        assert np.isfinite(out).all()


class TestOneHot:
    def test_shape_and_values(self):
        out = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_multidim_labels(self):
        out = F.one_hot(np.array([[0, 1], [1, 0]]), 2)
        assert out.shape == (2, 2, 2)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)
