"""Unit tests for layers and the module system."""

import numpy as np
import pytest

import repro.nn as nn


RNG = lambda seed=0: np.random.default_rng(seed)


class TestLinear:
    def test_output_shape(self):
        layer = nn.Linear(4, 7, RNG())
        assert layer(nn.Tensor(np.ones((3, 4)))).shape == (3, 7)

    def test_no_bias(self):
        layer = nn.Linear(4, 2, RNG(), bias=False)
        assert layer.bias is None
        out = layer(nn.Tensor(np.zeros((1, 4))))
        np.testing.assert_allclose(out.data, np.zeros((1, 2)))

    def test_parameters_registered(self):
        layer = nn.Linear(4, 2, RNG())
        names = dict(layer.named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_gradients_flow_to_weight(self):
        layer = nn.Linear(3, 2, RNG())
        layer(nn.Tensor(np.ones((5, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, [5.0, 5.0])


class TestEmbedding:
    def test_lookup_shape(self):
        emb = nn.Embedding(10, 4, rng=RNG())
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 4)

    def test_padding_idx_zeroed(self):
        emb = nn.Embedding(10, 4, rng=RNG(), padding_idx=0)
        np.testing.assert_allclose(emb(np.array([0])).data, np.zeros((1, 4)))

    def test_preset_weights(self):
        table = np.arange(8.0).reshape(4, 2)
        emb = nn.Embedding(4, 2, weights=table)
        np.testing.assert_allclose(emb(np.array([3])).data, [[6.0, 7.0]])

    def test_weights_shape_validated(self):
        with pytest.raises(ValueError):
            nn.Embedding(4, 2, weights=np.zeros((3, 2)))

    def test_requires_rng_or_weights(self):
        with pytest.raises(ValueError):
            nn.Embedding(4, 2)

    def test_frozen_embedding_has_no_parameters(self):
        emb = nn.Embedding(4, 2, rng=RNG(), trainable=False)
        assert emb.parameters() == []

    def test_trainable_embedding_gets_gradient(self):
        emb = nn.Embedding(4, 2, rng=RNG(), trainable=True)
        emb(np.array([1, 1])).sum().backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])

    def test_out_of_range_index_raises(self):
        emb = nn.Embedding(4, 2, rng=RNG())
        with pytest.raises(IndexError):
            emb(np.array([4]))


class TestDropoutLayer:
    def test_respects_eval_mode(self):
        layer = nn.Dropout(0.5, RNG())
        layer.eval()
        x = nn.Tensor(np.ones(50))
        np.testing.assert_allclose(layer(x).data, x.data)

    def test_train_mode_zeroes_some(self):
        layer = nn.Dropout(0.5, RNG())
        out = layer(nn.Tensor(np.ones(1000))).data
        assert (out == 0).sum() > 300

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            nn.Dropout(1.5, RNG())


class TestLayerNorm:
    def test_normalizes_last_axis(self):
        layer = nn.LayerNorm(6)
        x = nn.Tensor(np.random.default_rng(0).normal(2.0, 5.0, size=(4, 6)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-3)

    def test_gain_shift_learnable(self):
        layer = nn.LayerNorm(3)
        assert {n for n, _ in layer.named_parameters()} == {"gain", "shift"}


class TestMLP:
    def test_shapes(self):
        mlp = nn.MLP([4, 8, 2], RNG())
        assert mlp(nn.Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_needs_two_dims(self):
        with pytest.raises(ValueError):
            nn.MLP([4], RNG())

    def test_final_layer_linear_by_default(self):
        mlp = nn.MLP([2, 2], RNG())
        out = mlp(nn.Tensor(np.array([[-100.0, -100.0]]))).data
        # a ReLU-terminated net could not output negative values
        mlp2 = nn.MLP([2, 2], RNG(), final_activation=True)
        out2 = mlp2(nn.Tensor(np.array([[-100.0, -100.0]]))).data
        assert (out2 >= 0).all()

    def test_dropout_layers_created(self):
        mlp = nn.MLP([4, 4, 4], RNG(), dropout=0.3)
        assert any(d is not None for d in mlp.dropouts)

    def test_parameter_count(self):
        mlp = nn.MLP([4, 8, 2], RNG())
        assert mlp.num_parameters() == (4 * 8 + 8) + (8 * 2 + 2)


class TestSequential:
    def test_applies_in_order(self):
        rng = RNG()
        seq = nn.Sequential(nn.Linear(4, 8, rng), nn.ReLU(), nn.Linear(8, 2, rng))
        assert seq(nn.Tensor(np.ones((1, 4)))).shape == (1, 2)

    def test_collects_child_parameters(self):
        rng = RNG()
        seq = nn.Sequential(nn.Linear(2, 2, rng), nn.Linear(2, 2, rng))
        assert len(seq.parameters()) == 4


class TestModuleSystem:
    def test_train_eval_propagates(self):
        rng = RNG()
        seq = nn.Sequential(nn.Dropout(0.5, rng), nn.Linear(2, 2, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_clears_all(self):
        mlp = nn.MLP([2, 2], RNG())
        mlp(nn.Tensor(np.ones((1, 2)))).sum().backward()
        assert mlp.linears[0].weight.grad is not None
        mlp.zero_grad()
        assert mlp.linears[0].weight.grad is None

    def test_state_dict_roundtrip(self):
        mlp1 = nn.MLP([3, 4, 2], RNG(0))
        mlp2 = nn.MLP([3, 4, 2], RNG(99))
        mlp2.load_state_dict(mlp1.state_dict())
        x = nn.Tensor(np.ones((2, 3)))
        np.testing.assert_allclose(mlp1(x).data, mlp2(x).data)

    def test_state_dict_missing_key_raises(self):
        mlp = nn.MLP([2, 2], RNG())
        with pytest.raises(KeyError):
            mlp.load_state_dict({})

    def test_state_dict_shape_mismatch_raises(self):
        mlp = nn.MLP([2, 2], RNG())
        state = mlp.state_dict()
        state["linear0.weight"] = np.zeros((5, 5))
        with pytest.raises(ValueError):
            mlp.load_state_dict(state)

    def test_state_dict_is_a_copy(self):
        mlp = nn.MLP([2, 2], RNG())
        state = mlp.state_dict()
        state["linear0.weight"][:] = 99.0
        assert not (mlp.linears[0].weight.data == 99.0).any()

    def test_save_load_npz(self, tmp_path):
        mlp1 = nn.MLP([3, 2], RNG(0))
        mlp2 = nn.MLP([3, 2], RNG(5))
        path = tmp_path / "model.npz"
        nn.save_module(mlp1, path)
        nn.load_module(mlp2, path)
        x = nn.Tensor(np.ones((1, 3)))
        np.testing.assert_allclose(mlp1(x).data, mlp2(x).data)
