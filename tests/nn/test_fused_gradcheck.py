"""Exhaustive gradcheck of the fused kernels and gather/reduce backwards.

The fused training kernels (``softmax_cross_entropy``, ``linear_relu``, the
im2col ``conv1d_text`` path) carry hand-written closed-form backwards; this
file is their acceptance gate. Every check runs in float64 via
:func:`tests.nn.gradcheck.gradcheck`; a final class confirms the float32
mode produces the same gradients to float32-level tolerance and that fused
and composed formulations agree exactly on values and gradients.
"""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import functional as F

from .gradcheck import gradcheck


@pytest.fixture(params=[True, False], ids=["fused", "composed"])
def fast_math(request):
    previous = nn.set_fast_math(request.param)
    yield request.param
    nn.set_fast_math(previous)


def tensor(rng, shape, scale=1.0):
    return nn.Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestFusedKernels:
    def test_softmax_cross_entropy(self):
        rng = np.random.default_rng(0)
        logits = tensor(rng, (4, 5))
        labels = rng.integers(0, 5, size=4)
        gradcheck(lambda t: nn.softmax_cross_entropy(t, labels), [logits])

    def test_cross_entropy_dispatch(self, fast_math):
        rng = np.random.default_rng(1)
        logits = tensor(rng, (4, 5))
        labels = rng.integers(0, 5, size=4)
        gradcheck(lambda t: nn.cross_entropy(t, labels), [logits])

    def test_linear_relu(self):
        rng = np.random.default_rng(2)
        # Keep pre-activations away from the ReLU kink, where central
        # differences straddle the non-differentiable point.
        x = tensor(rng, (3, 4))
        weight = tensor(rng, (5, 4))
        bias = nn.Tensor(rng.normal(size=5) + 3.0, requires_grad=True)
        gradcheck(F.linear_relu, [x, weight, bias])

    def test_linear_relu_without_bias(self):
        rng = np.random.default_rng(3)
        x = nn.Tensor(rng.normal(size=(3, 4)) + 2.0, requires_grad=True)
        weight = nn.Tensor(np.abs(rng.normal(size=(5, 4))) + 0.1, requires_grad=True)
        gradcheck(lambda a, w: F.linear_relu(a, w), [x, weight])

    def test_conv1d_text(self, fast_math):
        rng = np.random.default_rng(4)
        x = tensor(rng, (2, 6, 3))
        weight = tensor(rng, (4, 2, 3))
        gradcheck(lambda a, w: nn.conv1d_text(a, w), [x, weight])

    def test_conv1d_text_with_bias(self, fast_math):
        rng = np.random.default_rng(5)
        x = tensor(rng, (2, 5, 3))
        weight = tensor(rng, (3, 2, 3))
        bias = tensor(rng, (3,))
        gradcheck(nn.conv1d_text, [x, weight, bias])

    def test_conv1d_text_fused_relu(self, fast_math):
        rng = np.random.default_rng(19)
        x = tensor(rng, (2, 5, 3))
        weight = tensor(rng, (3, 2, 3))
        bias = tensor(rng, (3,))
        gradcheck(lambda a, w, b: nn.conv1d_text(a, w, b, relu=True), [x, weight, bias])

    def test_conv_relu_fused_matches_composed(self, fast_math):
        rng = np.random.default_rng(20)
        x = nn.Tensor(rng.normal(size=(2, 6, 3)), requires_grad=True)
        w = nn.Tensor(rng.normal(size=(4, 3, 3)), requires_grad=True)
        fused = nn.conv1d_text(x, w, relu=True)
        composed = nn.conv1d_text(
            nn.Tensor(x.data.copy(), requires_grad=True),
            nn.Tensor(w.data.copy(), requires_grad=True),
        ).relu()
        np.testing.assert_allclose(fused.data, composed.data, rtol=1e-12)


class TestGatherReduceBackwards:
    def test_take_rows_repeated_indices(self):
        rng = np.random.default_rng(6)
        table = tensor(rng, (5, 3))
        indices = np.array([0, 2, 2, 4, 0, 0])
        gradcheck(lambda t: (t.take_rows(indices) * 1.5).sum(), [table])

    def test_take_rows_2d_indices(self):
        rng = np.random.default_rng(7)
        table = tensor(rng, (6, 2))
        indices = np.array([[0, 1, 1], [5, 0, 3]])
        gradcheck(lambda t: t.take_rows(indices).tanh(), [table])

    def test_getitem_fancy_rows(self):
        rng = np.random.default_rng(8)
        x = tensor(rng, (5, 4))
        index = np.array([1, 1, 3, 0])
        gradcheck(lambda t: (t[index] ** 2).sum(), [x])

    def test_max_over_axis(self, fast_math):
        rng = np.random.default_rng(9)
        x = tensor(rng, (3, 7))
        gradcheck(lambda t: t.max(axis=1), [x])

    def test_max_keepdims(self, fast_math):
        rng = np.random.default_rng(10)
        x = tensor(rng, (2, 4, 3))
        gradcheck(lambda t: t.max(axis=1, keepdims=True).tanh(), [x])

    def test_mean_over_time_weighted(self, fast_math):
        rng = np.random.default_rng(18)
        x = tensor(rng, (2, 5, 3))
        weights = np.abs(rng.normal(size=(2, 5))) + 0.1
        gradcheck(lambda t: nn.mean_over_time(t, weights), [x])

    def test_max_mean_pool_weighted(self):
        rng = np.random.default_rng(21)
        x = tensor(rng, (2, 5, 3))
        weights = np.abs(rng.normal(size=(2, 5))) + 0.1
        gradcheck(lambda t: nn.max_mean_pool(t, weights).tanh(), [x])

    def test_max_mean_pool_unweighted(self):
        rng = np.random.default_rng(22)
        x = tensor(rng, (2, 6, 3))
        gradcheck(lambda t: (nn.max_mean_pool(t) ** 2).sum(), [x])

    def test_conv_bank_pool_gradcheck(self):
        rng = np.random.default_rng(24)
        x = tensor(rng, (2, 8, 3))
        w2 = tensor(rng, (2, 2, 3))
        w3 = tensor(rng, (2, 3, 3))
        b2 = tensor(rng, (2,))
        b3 = tensor(rng, (2,))
        wts = [np.abs(rng.normal(size=(2, 8 - k + 1))) + 0.1 for k in (2, 3)]
        gradcheck(
            lambda a, u, v, p, q: nn.conv_bank_pool(
                a, [u, v], [p, q], pooling="max_mean", window_weights=wts
            ).tanh(),
            [x, w2, w3, b2, b3],
        )

    @pytest.mark.parametrize("pooling", ["max", "mean", "max_mean"])
    def test_conv_bank_pool_matches_composed(self, pooling):
        rng = np.random.default_rng(25)
        data = rng.normal(size=(3, 9, 4))
        kernels = (2, 4)
        mask = (rng.random(size=(3, 9)) < 0.8).astype(np.float64)
        arrays = [data] + [rng.normal(size=(2, k, 4)) for k in kernels] + [
            rng.normal(size=2) for _ in kernels
        ]

        def bank(a, u, v, p, q):
            wts = [nn.TextConv._window_weights(mask, k) for k in kernels]
            return nn.conv_bank_pool(
                a, [u, v], [p, q], pooling=pooling, window_weights=wts
            )

        def composed(a, u, v, p, q):
            pooled = []
            for w, b, k in zip((u, v), (p, q), kernels):
                fmap = nn.conv1d_text(a, w, b, relu=True)
                if pooling in ("max", "max_mean"):
                    pooled.append(nn.max_over_time(fmap))
                if pooling in ("mean", "max_mean"):
                    pooled.append(
                        nn.mean_over_time(fmap, nn.TextConv._window_weights(mask, k))
                    )
            return nn.concat(pooled, axis=1)

        previous = nn.set_fast_math(False)
        try:
            grads = {}
            values = {}
            for name, fn in (("bank", bank), ("composed", composed)):
                tensors = [nn.Tensor(a.copy(), requires_grad=True) for a in arrays]
                out = fn(*tensors)
                values[name] = out.data
                out.sum().backward()
                grads[name] = [t.grad for t in tensors]
        finally:
            nn.set_fast_math(previous)
        np.testing.assert_allclose(values["bank"], values["composed"], rtol=1e-9, atol=1e-12)
        for bank_grad, composed_grad in zip(grads["bank"], grads["composed"]):
            np.testing.assert_allclose(bank_grad, composed_grad, rtol=1e-8, atol=1e-11)

    def test_max_mean_pool_matches_composed(self):
        rng = np.random.default_rng(23)
        data = rng.normal(size=(3, 7, 4))
        weights = np.abs(rng.normal(size=(3, 7))) + 0.1
        fused_x = nn.Tensor(data.copy(), requires_grad=True)
        nn.max_mean_pool(fused_x, weights).sum().backward()
        composed_x = nn.Tensor(data.copy(), requires_grad=True)
        nn.concat(
            [
                nn.max_over_time(composed_x),
                nn.mean_over_time(composed_x, weights),
            ],
            axis=1,
        ).sum().backward()
        np.testing.assert_allclose(fused_x.grad, composed_x.grad, rtol=1e-12)

    def test_concat(self):
        rng = np.random.default_rng(11)
        a = tensor(rng, (2, 3))
        b = tensor(rng, (2, 4))
        gradcheck(lambda u, v: (nn.concat([u, v], axis=1) ** 2).sum(), [a, b])


class TestFusedComposedEquivalence:
    """Fused kernels must match their composed formulations bit-for-bit in
    values and to float tolerance in gradients."""

    def _grads(self, fn, arrays):
        tensors = [nn.Tensor(a.copy(), requires_grad=True) for a in arrays]
        out = fn(*tensors)
        if out.data.ndim != 0:
            out = out.sum()
        out.backward()
        return float(out.data), [t.grad for t in tensors]

    def test_cross_entropy_fused_matches_composed(self):
        rng = np.random.default_rng(12)
        logits = rng.normal(size=(8, 5))
        labels = rng.integers(0, 5, size=8)
        previous = nn.set_fast_math(True)
        try:
            fused_val, (fused_grad,) = self._grads(
                lambda t: nn.cross_entropy(t, labels), [logits]
            )
            nn.set_fast_math(False)
            composed_val, (composed_grad,) = self._grads(
                lambda t: nn.cross_entropy(t, labels), [logits]
            )
        finally:
            nn.set_fast_math(previous)
        np.testing.assert_allclose(fused_val, composed_val, rtol=1e-12)
        np.testing.assert_allclose(fused_grad, composed_grad, rtol=1e-10, atol=1e-12)

    def test_linear_relu_matches_composed(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(6, 4))
        w = rng.normal(size=(3, 4))
        b = rng.normal(size=3)
        fused_val, fused_grads = self._grads(F.linear_relu, [x, w, b])
        composed_val, composed_grads = self._grads(
            lambda a, wt, bt: F.relu(a @ wt.T + bt), [x, w, b]
        )
        np.testing.assert_allclose(fused_val, composed_val, rtol=1e-12)
        for fused, composed in zip(fused_grads, composed_grads):
            np.testing.assert_allclose(fused, composed, rtol=1e-10, atol=1e-12)

    def test_conv_fast_matches_legacy(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(3, 8, 4))
        w = rng.normal(size=(5, 3, 4))
        previous = nn.set_fast_math(True)
        try:
            fast_val, fast_grads = self._grads(
                lambda a, wt: nn.conv1d_text(a, wt), [x, w]
            )
            nn.set_fast_math(False)
            legacy_val, legacy_grads = self._grads(
                lambda a, wt: nn.conv1d_text(a, wt), [x, w]
            )
        finally:
            nn.set_fast_math(previous)
        np.testing.assert_allclose(fast_val, legacy_val, rtol=1e-10)
        for fast, legacy in zip(fast_grads, legacy_grads):
            np.testing.assert_allclose(fast, legacy, rtol=1e-9, atol=1e-11)


class TestFloat32Mode:
    """float32 graphs produce the float64 gradients to float32 tolerance."""

    def _float32_vs_float64(self, fn, arrays, rtol=2e-3, atol=2e-4):
        grads = {}
        for dtype in (np.float64, np.float32):
            tensors = [
                nn.Tensor(a.astype(dtype), requires_grad=True) for a in arrays
            ]
            out = fn(*tensors)
            if out.data.ndim != 0:
                out = out.sum()
            assert out.data.dtype == dtype
            out.backward()
            grads[dtype] = [t.grad for t in tensors]
        for g32, g64 in zip(grads[np.float32], grads[np.float64]):
            assert g32.dtype == np.float32
            np.testing.assert_allclose(g32, g64, rtol=rtol, atol=atol)

    def test_softmax_cross_entropy_float32(self):
        rng = np.random.default_rng(15)
        logits = rng.normal(size=(8, 5))
        labels = rng.integers(0, 5, size=8)
        self._float32_vs_float64(
            lambda t: nn.softmax_cross_entropy(t, labels), [logits]
        )

    def test_linear_relu_float32(self):
        rng = np.random.default_rng(16)
        arrays = [rng.normal(size=(6, 4)), rng.normal(size=(3, 4)), rng.normal(size=3)]
        self._float32_vs_float64(F.linear_relu, arrays)

    def test_conv1d_text_float32(self):
        rng = np.random.default_rng(17)
        arrays = [rng.normal(size=(2, 9, 4)), rng.normal(size=(3, 4, 4))]
        self._float32_vs_float64(lambda a, w: nn.conv1d_text(a, w), arrays)
