"""Tests for the optional allocation/FLOP counters behind REPRO_TENSOR_STATS."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture
def stats_on():
    previous = nn.set_tensor_stats(True)
    nn.reset_tensor_stats()
    yield
    nn.set_tensor_stats(previous)
    nn.reset_tensor_stats()


class TestDisabledByDefault:
    def test_off_unless_env_set(self):
        # The test environment does not export REPRO_TENSOR_STATS.
        assert nn.tensor_stats_enabled() is False

    def test_no_counting_when_disabled(self):
        nn.reset_tensor_stats()
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        _ = a @ a
        stats = nn.tensor_stats()
        assert stats["graph_tensors"] == 0
        assert stats["matmul_flops"] == 0


class TestCounting:
    def test_graph_tensor_allocation_counted(self, stats_on):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a + a
        stats = nn.tensor_stats()
        assert stats["graph_tensors"] >= 1
        assert stats["graph_bytes"] >= out.data.nbytes

    def test_matmul_flops_exact_2d(self, stats_on):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 5)), requires_grad=True)
        _ = a @ b
        assert nn.tensor_stats()["matmul_flops"] == 2 * 3 * 5 * 4

    def test_matmul_flops_matrix_vector(self, stats_on):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        v = Tensor(np.ones(4), requires_grad=True)
        _ = a @ v
        assert nn.tensor_stats()["matmul_flops"] == 2 * 3 * 4

    def test_counters_accumulate_and_reset(self, stats_on):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        _ = a @ a
        _ = a @ a
        assert nn.tensor_stats()["matmul_flops"] == 2 * (2 * 2 * 2 * 2)
        nn.reset_tensor_stats()
        assert nn.tensor_stats()["matmul_flops"] == 0

    def test_set_tensor_stats_returns_previous(self):
        previous = nn.set_tensor_stats(False)
        try:
            assert nn.set_tensor_stats(previous) is False
        finally:
            nn.set_tensor_stats(previous)

    def test_snapshot_is_a_copy(self, stats_on):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        _ = a + a
        snap = nn.tensor_stats()
        snap["graph_tensors"] = -1
        assert nn.tensor_stats()["graph_tensors"] >= 1


class TestNewCounters:
    def test_all_keys_present(self):
        stats = nn.tensor_stats()
        for key in ("graph_tensors", "graph_bytes", "matmul_flops",
                    "backward_bytes", "peak_bytes", "arena_hits",
                    "arena_misses", "fused_ops"):
            assert key in stats

    def test_no_grad_tensors_not_counted(self, stats_on):
        a = Tensor(np.ones((8, 8)), requires_grad=True)
        with nn.no_grad():
            _ = (a @ a).relu()
        stats = nn.tensor_stats()
        assert stats["graph_tensors"] == 0
        assert stats["graph_bytes"] == 0
        # FLOPs still count: inference work is real work.
        assert stats["matmul_flops"] > 0

    def test_backward_bytes_counted_on_backward(self, stats_on):
        a = Tensor(np.ones((16, 16)), requires_grad=True)
        (a @ a).sum().backward()
        stats = nn.tensor_stats()
        assert stats["backward_bytes"] >= a.data.nbytes

    def test_peak_bytes_set_at_step_boundary(self, stats_on):
        lin = nn.Linear(8, 8, np.random.default_rng(0))
        optimizer = nn.SGD(lin.parameters(), lr=0.1)
        optimizer.zero_grad()
        loss = lin(Tensor(np.ones((4, 8)))).sum()
        loss.backward()
        optimizer.step()  # marks the step boundary
        stats = nn.tensor_stats()
        assert stats["peak_bytes"] > 0
        assert stats["peak_bytes"] <= stats["graph_bytes"] + stats["backward_bytes"]


class TestTrainingUnaffected:
    def test_forward_backward_values_identical(self, stats_on):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 3))
        weight = rng.normal(size=(3, 2))

        def run():
            a = Tensor(data.copy(), requires_grad=True)
            w = Tensor(weight.copy(), requires_grad=True)
            out = (a @ w).sum()
            out.backward()
            return out.data.copy(), a.grad.copy()

        with_stats = run()
        nn.set_tensor_stats(False)
        without_stats = run()
        np.testing.assert_array_equal(with_stats[0], without_stats[0])
        np.testing.assert_array_equal(with_stats[1], without_stats[1])
