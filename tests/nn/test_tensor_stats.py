"""Tests for the optional allocation/FLOP counters behind REPRO_TENSOR_STATS."""

import numpy as np
import pytest

from repro import nn
from repro.nn import Tensor


@pytest.fixture
def stats_on():
    previous = nn.set_tensor_stats(True)
    nn.reset_tensor_stats()
    yield
    nn.set_tensor_stats(previous)
    nn.reset_tensor_stats()


class TestDisabledByDefault:
    def test_off_unless_env_set(self):
        # The test environment does not export REPRO_TENSOR_STATS.
        assert nn.tensor_stats_enabled() is False

    def test_no_counting_when_disabled(self):
        nn.reset_tensor_stats()
        a = Tensor(np.ones((4, 4)), requires_grad=True)
        _ = a @ a
        stats = nn.tensor_stats()
        assert stats["graph_tensors"] == 0
        assert stats["matmul_flops"] == 0


class TestCounting:
    def test_graph_tensor_allocation_counted(self, stats_on):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        out = a + a
        stats = nn.tensor_stats()
        assert stats["graph_tensors"] >= 1
        assert stats["graph_bytes"] >= out.data.nbytes

    def test_matmul_flops_exact_2d(self, stats_on):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones((4, 5)), requires_grad=True)
        _ = a @ b
        assert nn.tensor_stats()["matmul_flops"] == 2 * 3 * 5 * 4

    def test_matmul_flops_matrix_vector(self, stats_on):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        v = Tensor(np.ones(4), requires_grad=True)
        _ = a @ v
        assert nn.tensor_stats()["matmul_flops"] == 2 * 3 * 4

    def test_counters_accumulate_and_reset(self, stats_on):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        _ = a @ a
        _ = a @ a
        assert nn.tensor_stats()["matmul_flops"] == 2 * (2 * 2 * 2 * 2)
        nn.reset_tensor_stats()
        assert nn.tensor_stats()["matmul_flops"] == 0

    def test_set_tensor_stats_returns_previous(self):
        previous = nn.set_tensor_stats(False)
        try:
            assert nn.set_tensor_stats(previous) is False
        finally:
            nn.set_tensor_stats(previous)

    def test_snapshot_is_a_copy(self, stats_on):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        _ = a + a
        snap = nn.tensor_stats()
        snap["graph_tensors"] = -1
        assert nn.tensor_stats()["graph_tensors"] >= 1


class TestTrainingUnaffected:
    def test_forward_backward_values_identical(self, stats_on):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 3))
        weight = rng.normal(size=(3, 2))

        def run():
            a = Tensor(data.copy(), requires_grad=True)
            w = Tensor(weight.copy(), requires_grad=True)
            out = (a @ w).sum()
            out.backward()
            return out.data.copy(), a.grad.copy()

        with_stats = run()
        nn.set_tensor_stats(False)
        without_stats = run()
        np.testing.assert_array_equal(with_stats[0], without_stats[0])
        np.testing.assert_array_equal(with_stats[1], without_stats[1])
