"""Optimizer state_dict round-trips: a restored optimizer must continue
*bit-identically*, and malformed state must be rejected by name."""

import numpy as np
import pytest

import repro.nn as nn

FACTORIES = {
    "sgd_momentum": lambda params: nn.SGD(
        params, lr=0.05, momentum=0.9, weight_decay=0.01
    ),
    "adam": lambda params: nn.Adam(params, lr=0.01),
    "adadelta": lambda params: nn.Adadelta(params, lr=0.5, rho=0.9),
}


def make_params(seed=0):
    rng = np.random.default_rng(seed)
    return [
        nn.Parameter(rng.normal(size=(3, 2))),
        nn.Parameter(rng.normal(size=(4,))),
    ]


def grad_sequence(steps, params, seed):
    rng = np.random.default_rng(seed)
    return [
        [rng.normal(size=p.data.shape) for p in params] for _ in range(steps)
    ]


def apply_steps(optimizer, params, grads_seq):
    for grads in grads_seq:
        for param, grad in zip(params, grads):
            param.grad = grad.copy()
        optimizer.step()


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(FACTORIES), ids=sorted(FACTORIES))
    def test_restored_optimizer_continues_bit_identically(self, name):
        factory = FACTORIES[name]
        params_a = make_params()
        optimizer_a = factory(params_a)
        warmup = grad_sequence(5, params_a, seed=1)
        continuation = grad_sequence(5, params_a, seed=2)
        apply_steps(optimizer_a, params_a, warmup)
        state = optimizer_a.state_dict()
        frozen = [p.data.copy() for p in params_a]
        apply_steps(optimizer_a, params_a, continuation)

        params_b = make_params()
        for param, values in zip(params_b, frozen):
            param.data = values.copy()
        optimizer_b = factory(params_b)
        optimizer_b.load_state_dict(state)
        apply_steps(optimizer_b, params_b, continuation)

        for index, (a, b) in enumerate(zip(params_a, params_b)):
            assert np.array_equal(a.data, b.data), f"param {index} diverged"

    def test_adam_step_count_survives(self):
        params = make_params()
        optimizer = nn.Adam(params, lr=0.01)
        apply_steps(optimizer, params, grad_sequence(7, params, seed=3))
        state = optimizer.state_dict()
        assert state["hyper"]["step_count"] == 7
        restored = nn.Adam(make_params(), lr=0.01)
        restored.load_state_dict(state)
        assert restored._step_count == 7

    def test_snapshot_is_immune_to_later_steps(self):
        params = make_params()
        optimizer = nn.SGD(params, lr=0.1, momentum=0.9)
        apply_steps(optimizer, params, grad_sequence(2, params, seed=4))
        state = optimizer.state_dict()
        before = [array.copy() for array in state["buffers"]["velocity"]]
        apply_steps(optimizer, params, grad_sequence(2, params, seed=5))
        for frozen, held in zip(before, state["buffers"]["velocity"]):
            assert np.array_equal(frozen, held)

    def test_adadelta_persists_averages_not_scratch(self):
        # The in-place (allocation-free) Adadelta step drives two scratch
        # buffers that are overwritten every step — only the running
        # averages are state, and only they may be persisted.
        optimizer = nn.Adadelta(make_params(), lr=0.5)
        state = optimizer.state_dict()
        assert sorted(state["buffers"]) == ["avg_sq_delta", "avg_sq_grad"]

    def test_restored_lr_override_sticks(self):
        # The trainer backs lr off after divergence; a checkpointed backoff
        # must win over the constructor default on restore.
        optimizer = nn.Adadelta(make_params(), lr=0.5)
        state = optimizer.state_dict()
        state["hyper"]["lr"] = 0.125
        restored = nn.Adadelta(make_params(), lr=0.5)
        restored.load_state_dict(state)
        assert restored.lr == 0.125


class TestRejection:
    def test_kind_mismatch(self):
        state = nn.SGD(make_params(), lr=0.1).state_dict()
        with pytest.raises(ValueError, match="sgd"):
            nn.Adam(make_params(), lr=0.01).load_state_dict(state)

    def test_buffer_name_mismatch(self):
        state = nn.SGD(make_params(), lr=0.1).state_dict()
        state["buffers"]["mystery"] = state["buffers"].pop("velocity")
        with pytest.raises(ValueError, match="buffer mismatch"):
            nn.SGD(make_params(), lr=0.1).load_state_dict(state)

    def test_buffer_count_mismatch(self):
        state = nn.SGD(make_params(), lr=0.1).state_dict()
        state["buffers"]["velocity"].pop()
        with pytest.raises(ValueError, match="velocity"):
            nn.SGD(make_params(), lr=0.1).load_state_dict(state)

    def test_buffer_shape_mismatch(self):
        state = nn.Adam(make_params(), lr=0.01).state_dict()
        state["buffers"]["m"][0] = np.zeros((9, 9))
        with pytest.raises(ValueError, match="shape"):
            nn.Adam(make_params(), lr=0.01).load_state_dict(state)


class TestClipGradNormNonFinite:
    def test_nan_norm_returned_without_scaling(self):
        param = nn.Parameter(np.zeros(3))
        param.grad = np.array([1.0, float("nan"), 1.0])
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert np.isnan(norm)
        # the NaN must stay visible for the caller's divergence guard
        assert np.isnan(param.grad[1]) and param.grad[0] == 1.0

    def test_inf_norm_does_not_zero_gradients(self):
        # Historically scale = max_norm / inf == 0 silently wiped every
        # gradient, masking divergence as a frozen model.
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([float("inf"), 2.0])
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert np.isinf(norm)
        assert param.grad[1] == 2.0

    def test_finite_path_unaffected(self):
        param = nn.Parameter(np.zeros(2))
        param.grad = np.array([3.0, 4.0])
        norm = nn.clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)
