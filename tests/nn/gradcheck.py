"""Exhaustive finite-difference gradient checker for ``repro.nn``.

Unlike the sampled checks in ``test_gradcheck.py``, :func:`gradcheck`
perturbs *every* element of every input, so inputs should stay small
(tens of elements). It is the acceptance gate for hand-written backward
passes: fused kernels with closed-form gradients must agree with central
differences of their own forward function.
"""

import numpy as np

import repro.nn as nn


def _evaluate(fn, tensors):
    """Scalar value of ``fn`` at the tensors' current data (no tape)."""
    with nn.no_grad():
        out = fn(*tensors)
        if out.data.ndim != 0:
            out = out.sum()
        return float(out.data)


def gradcheck(fn, inputs, eps=1e-6, atol=1e-5, rtol=1e-4):
    """Verify analytic gradients of ``sum(fn(*inputs))`` against central
    finite differences, element by element.

    Parameters
    ----------
    fn:
        Callable taking the input Tensors and returning a Tensor (any
        shape; non-scalars are summed).
    inputs:
        Tensors to differentiate with respect to. Each must have
        ``requires_grad=True`` and float64 data — float32 lacks the
        headroom for ``eps``-sized central differences.
    eps, atol, rtol:
        Perturbation size and comparison tolerances.

    Returns True; raises AssertionError with the offending index otherwise.
    """
    for tensor in inputs:
        assert tensor.requires_grad, "gradcheck inputs must require grad"
        assert tensor.data.dtype == np.float64, (
            f"gradcheck needs float64 inputs, got {tensor.data.dtype}"
        )
        tensor.grad = None

    out = fn(*inputs)
    if out.data.ndim != 0:
        out = out.sum()
    out.backward()

    for arg_index, tensor in enumerate(inputs):
        analytic = tensor.grad
        assert analytic is not None, f"input {arg_index} received no gradient"
        data = tensor.data
        for flat in range(data.size):
            index = np.unravel_index(flat, data.shape)
            original = data[index]
            data[index] = original + eps
            plus = _evaluate(fn, inputs)
            data[index] = original - eps
            minus = _evaluate(fn, inputs)
            data[index] = original
            numeric = (plus - minus) / (2 * eps)
            got = analytic[index]
            tol = atol + rtol * abs(numeric)
            assert abs(got - numeric) <= tol, (
                f"input {arg_index} grad mismatch at {index}: "
                f"analytic {got} vs numeric {numeric} (tol {tol})"
            )
    return True
