"""Dtype configuration, fast-math toggle, and the no_grad decorator."""

import numpy as np
import pytest

import repro.nn as nn
from repro.nn import init


@pytest.fixture(autouse=True)
def restore_defaults():
    dtype = nn.get_default_dtype()
    fast = nn.fast_math_enabled()
    yield
    nn.set_default_dtype(dtype)
    nn.set_fast_math(fast)


class TestDefaultDtype:
    def test_library_default_is_float64(self):
        assert nn.get_default_dtype() == np.float64

    def test_set_returns_previous(self):
        previous = nn.set_default_dtype(np.float32)
        assert previous == np.float64
        assert nn.get_default_dtype() == np.float32

    def test_context_manager_restores(self):
        with nn.default_dtype("float32"):
            assert nn.get_default_dtype() == np.float32
            assert nn.Tensor([1.0, 2.0]).data.dtype == np.float32
        assert nn.get_default_dtype() == np.float64

    def test_rejects_non_float(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int32)

    def test_python_scalars_use_default(self):
        nn.set_default_dtype(np.float32)
        assert nn.Tensor(3.0).data.dtype == np.float32

    def test_float_arrays_keep_their_dtype(self):
        # An explicit float32 array is not silently promoted even while the
        # default is float64, and vice versa.
        assert nn.Tensor(np.ones(3, dtype=np.float32)).data.dtype == np.float32
        nn.set_default_dtype(np.float32)
        assert nn.Tensor(np.ones(3, dtype=np.float64)).data.dtype == np.float64

    def test_explicit_dtype_wins(self):
        t = nn.Tensor(np.ones(3, dtype=np.float64), dtype=np.float32)
        assert t.data.dtype == np.float32


class TestFloat32Graphs:
    def test_binary_ops_do_not_promote(self):
        x = nn.Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        for result in (x + 1, x - 0.5, x * 2.0, x / 3.0, 1.0 - x, 2.0 / (x + 1)):
            assert result.data.dtype == np.float32, result.data.dtype

    def test_reductions_keep_dtype(self):
        x = nn.Tensor(np.ones((3, 4), dtype=np.float32))
        assert x.sum().data.dtype == np.float32
        assert x.mean(axis=1).data.dtype == np.float32
        assert x.max(axis=0).data.dtype == np.float32

    def test_gradients_are_float32(self):
        x = nn.Tensor(np.ones((2, 3), dtype=np.float32), requires_grad=True)
        ((x * 2.0).tanh().sum()).backward()
        assert x.grad.dtype == np.float32

    def test_initializers_follow_default(self):
        rng = np.random.default_rng(0)
        nn.set_default_dtype(np.float32)
        assert init.xavier_uniform((3, 4), rng).dtype == np.float32
        assert init.zeros((5,)).dtype == np.float32

    def test_initializer_values_match_across_dtypes(self):
        # Same seed must produce the same draws regardless of dtype, so a
        # float32 run is a cast of the float64 run, not a different model.
        shape = (4, 6)
        w64 = init.kaiming_uniform(shape, np.random.default_rng(7))
        nn.set_default_dtype(np.float32)
        w32 = init.kaiming_uniform(shape, np.random.default_rng(7))
        np.testing.assert_allclose(w32, w64.astype(np.float32))

    def test_embedding_table_follows_default(self):
        nn.set_default_dtype(np.float32)
        table = np.eye(4, 3)  # float64 input
        emb = nn.Embedding(4, 3, weights=table, trainable=False)
        assert emb.weight.data.dtype == np.float32
        assert emb(np.array([0, 2], dtype=np.int32)).data.dtype == np.float32


class TestSerializationDtype:
    def test_float32_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        with nn.default_dtype("float32"):
            model = nn.MLP([4, 5, 3], rng)
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        with nn.default_dtype("float32"):
            clone = nn.MLP([4, 5, 3], np.random.default_rng(2))
        nn.load_module(clone, path)
        for (_, a), (_, b) in zip(model.named_parameters(), clone.named_parameters()):
            assert b.data.dtype == np.float32
            np.testing.assert_array_equal(a.data, b.data)

    def test_load_with_dtype_recasts(self, tmp_path):
        rng = np.random.default_rng(3)
        model = nn.MLP([4, 3], rng)  # float64
        path = tmp_path / "model.npz"
        nn.save_module(model, path)
        clone = nn.MLP([4, 3], np.random.default_rng(4))
        nn.load_module(clone, path, dtype=np.float32)
        for _, param in clone.named_parameters():
            assert param.data.dtype == np.float32


class TestPredictorOutputDtype:
    """Regression: predict_pairs once allocated its output float64 no matter
    what dtype the model computed in — predictions silently up-cast."""

    @pytest.fixture(scope="class")
    def tiny_world(self):
        from repro.data import (
            GeneratorConfig,
            cold_start_split,
            generate_domain_pair,
        )

        dataset = generate_domain_pair(
            "books",
            "movies",
            GeneratorConfig(num_users=40, num_items_per_domain=15,
                            reviews_per_user_mean=4.0, seed=11),
        )
        return dataset, cold_start_split(dataset, seed=5)

    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_predict_pairs_returns_configured_dtype(self, tiny_world, dtype):
        from repro.core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer

        dataset, split = tiny_world
        config = OmniMatchConfig(
            embed_dim=8, num_filters=3, kernel_sizes=(2,), invariant_dim=4,
            specific_dim=4, projection_dim=4, doc_len=16, vocab_size=200,
            epochs=1, batch_size=16, early_stopping=False, dtype=dtype,
        )
        result = OmniMatchTrainer(dataset, split, config).fit()
        predictor = ColdStartPredictor(result, batch_size=16)
        test = split.eval_interactions(dataset, "test")
        pairs = [(r.user_id, r.item_id) for r in test[:4]]
        assert predictor.predict_pairs(pairs).dtype == np.dtype(dtype)
        assert predictor.predict_pairs([]).dtype == np.dtype(dtype)


class TestFastMathToggle:
    def test_set_returns_previous(self):
        previous = nn.set_fast_math(False)
        assert previous is True
        assert not nn.fast_math_enabled()

    def test_cross_entropy_same_loss_both_paths(self):
        rng = np.random.default_rng(5)
        logits = rng.normal(size=(6, 5))
        labels = rng.integers(0, 5, size=6)
        nn.set_fast_math(True)
        fused = nn.cross_entropy(nn.Tensor(logits), labels).item()
        nn.set_fast_math(False)
        composed = nn.cross_entropy(nn.Tensor(logits), labels).item()
        assert fused == pytest.approx(composed, rel=1e-12)


class TestNoGradDecorator:
    def test_decorated_function_builds_no_graph(self):
        @nn.no_grad()
        def forward(x):
            out = (x * 2.0).sum()
            assert not nn.is_grad_enabled()
            return out

        x = nn.Tensor(np.ones(3), requires_grad=True)
        out = forward(x)
        assert not out.requires_grad

    def test_decorator_restores_grad_mode(self):
        @nn.no_grad()
        def noop():
            return None

        noop()
        assert nn.is_grad_enabled()

    def test_decorator_restores_on_exception(self):
        @nn.no_grad()
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            boom()
        assert nn.is_grad_enabled()

    def test_decorator_preserves_metadata(self):
        @nn.no_grad()
        def documented():
            """docstring survives wrapping"""

        assert documented.__name__ == "documented"
        assert "survives" in documented.__doc__

    def test_context_manager_still_works(self):
        with nn.no_grad():
            assert not nn.is_grad_enabled()
        assert nn.is_grad_enabled()
