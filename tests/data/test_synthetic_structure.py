"""Structural checks on generated worlds beyond the statistical ones."""

import pytest

from repro.data import GeneratorConfig, generate_domain_pair, generate_scenario


@pytest.fixture(scope="module")
def world():
    return generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=80, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=71),
    )


class TestStructure:
    def test_item_ids_prefixed_by_domain(self, world):
        assert all(i.startswith("BO") for i in world.source.items)
        assert all(i.startswith("MO") for i in world.target.items)

    def test_user_ids_shared_namespace(self, world):
        for user in world.overlapping_users:
            assert user.startswith("U")

    def test_no_duplicate_user_item_pairs(self, world):
        for domain in (world.source, world.target):
            pairs = [(r.user_id, r.item_id) for r in domain.reviews]
            assert len(pairs) == len(set(pairs)), domain.name

    def test_overlapping_users_review_in_both(self, world):
        for user in list(world.overlapping_users)[:20]:
            assert world.source.reviews_of_user(user)
            assert world.target.reviews_of_user(user)

    def test_non_overlap_users_in_exactly_one_domain(self, world):
        only_source = world.source.users - world.target.users
        only_target = world.target.users - world.source.users
        assert only_source and only_target
        for user in list(only_source)[:5]:
            assert not world.target.reviews_of_user(user)

    def test_metadata_carries_config(self, world):
        assert isinstance(world.metadata["config"], GeneratorConfig)

    def test_scenario_metadata_carries_dataset_name(self):
        dataset = generate_scenario("douban", "movies", "music",
                                    num_users=60, num_items_per_domain=30)
        assert dataset.metadata["dataset"] == "douban"

    def test_summaries_nonempty(self, world):
        assert all(r.summary.strip() for r in world.target.reviews)
