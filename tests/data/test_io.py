"""Tests for JSON-lines dataset import/export."""

import json

import pytest

from repro.data import (
    DomainData,
    Review,
    load_cross_domain_jsonl,
    load_domain_jsonl,
    save_domain_jsonl,
)


def write_jsonl(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


AMAZON_RECORDS = [
    {"reviewerID": "u1", "asin": "b1", "overall": 5.0,
     "summary": "Vampire Romance", "reviewText": "long text about vampires"},
    {"reviewerID": "u2", "asin": "b1", "overall": 4.0,
     "summary": "pretty good", "reviewText": ""},
    {"reviewerID": "u1", "asin": "b2", "overall": 3.0,
     "summary": "", "reviewText": ""},  # no review: dropped by default
]


class TestLoadDomain:
    def test_loads_amazon_format(self, tmp_path):
        path = tmp_path / "books.jsonl"
        write_jsonl(path, AMAZON_RECORDS)
        domain = load_domain_jsonl(path, "books")
        assert domain.name == "books"
        assert len(domain) == 2  # empty-review record dropped
        assert domain.reviews[0].summary == "Vampire Romance"

    def test_keep_empty_reviews_flag(self, tmp_path):
        path = tmp_path / "books.jsonl"
        write_jsonl(path, AMAZON_RECORDS)
        domain = load_domain_jsonl(path, "books", drop_empty_reviews=False)
        assert len(domain) == 3

    def test_rating_rounded_and_clipped(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [
            {"reviewerID": "u", "asin": "i", "overall": 4.6, "summary": "x",
             "reviewText": "y"},
            {"reviewerID": "u", "asin": "j", "overall": 9.0, "summary": "x",
             "reviewText": "y"},
        ])
        domain = load_domain_jsonl(path, "d")
        assert domain.reviews[0].rating == 5.0
        assert domain.reviews[1].rating == 5.0

    def test_custom_field_mapping(self, tmp_path):
        path = tmp_path / "douban.jsonl"
        write_jsonl(path, [
            {"user": "u1", "movie": "m1", "stars": 4, "short": "nice film",
             "long": "body"},
        ])
        domain = load_domain_jsonl(
            path, "movies",
            fields={"user_id": "user", "item_id": "movie", "rating": "stars",
                    "summary": "short", "text": "long"},
        )
        assert domain.reviews[0].user_id == "u1"
        assert domain.reviews[0].summary == "nice film"

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"reviewerID": "u"}\nnot json\n')
        with pytest.raises(ValueError, match=":2"):
            load_domain_jsonl(path, "d")

    def test_missing_fields_reported_by_name(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [{"reviewerID": "u", "summary": "s",
                            "reviewText": "t"}])
        with pytest.raises(ValueError, match="asin, overall"):
            load_domain_jsonl(path, "d")

    def test_non_numeric_rating_reported(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [{"reviewerID": "u", "asin": "i",
                            "overall": "five stars", "summary": "s",
                            "reviewText": "t"}])
        with pytest.raises(ValueError, match="non-numeric rating"):
            load_domain_jsonl(path, "d")

    def test_summary_falls_back_to_text(self, tmp_path):
        path = tmp_path / "d.jsonl"
        write_jsonl(path, [
            {"reviewerID": "u", "asin": "i", "overall": 3,
             "summary": "", "reviewText": "only a body"},
        ])
        domain = load_domain_jsonl(path, "d")
        assert domain.reviews[0].summary == "only a body"


class TestErrorBudget:
    """``max_bad_records``: tolerate up to N malformed lines, then abort."""

    MIXED = [
        {"reviewerID": "u1", "asin": "b1", "overall": 5.0, "summary": "ok",
         "reviewText": "fine"},
        "not json",
        {"reviewerID": "u2", "asin": "b2", "overall": "bad", "summary": "s",
         "reviewText": "t"},
        {"reviewerID": "u3", "asin": "b3", "overall": 4.0, "summary": "ok",
         "reviewText": "good"},
    ]

    def write_mixed(self, path):
        with open(path, "w") as handle:
            for record in self.MIXED:
                if isinstance(record, str):
                    handle.write(record + "\n")
                else:
                    handle.write(json.dumps(record) + "\n")

    def test_budget_skips_and_warns_with_context(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        self.write_mixed(path)
        with pytest.warns(RuntimeWarning, match="skipped 2 bad record"):
            domain = load_domain_jsonl(path, "d", max_bad_records=2)
        assert len(domain) == 2  # both good records survive

    def test_budget_exceeded_aborts_with_line(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        self.write_mixed(path)
        with pytest.raises(ValueError, match=r"mixed\.jsonl:3.*max_bad_records=1"):
            load_domain_jsonl(path, "d", max_bad_records=1)

    def test_default_budget_is_strict(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        self.write_mixed(path)
        with pytest.raises(ValueError, match=r":2.*invalid JSON"):
            load_domain_jsonl(path, "d")


class TestRoundTrip:
    def test_save_then_load(self, tmp_path):
        original = DomainData("books", [
            Review("u1", "i1", 5.0, "great", "really great"),
            Review("u2", "i2", 2.0, "weak", "quite weak indeed"),
        ])
        path = tmp_path / "out.jsonl"
        save_domain_jsonl(original, path)
        reloaded = load_domain_jsonl(path, "books")
        assert len(reloaded) == 2
        assert reloaded.reviews[0].summary == "great"
        assert reloaded.reviews[1].rating == 2.0


class TestCrossDomain:
    def test_overlap_only_filter(self, tmp_path):
        src = tmp_path / "src.jsonl"
        tgt = tmp_path / "tgt.jsonl"
        write_jsonl(src, [
            {"reviewerID": "shared", "asin": "b1", "overall": 5, "summary": "s",
             "reviewText": "t"},
            {"reviewerID": "src-only", "asin": "b2", "overall": 4, "summary": "s",
             "reviewText": "t"},
        ])
        write_jsonl(tgt, [
            {"reviewerID": "shared", "asin": "m1", "overall": 3, "summary": "s",
             "reviewText": "t"},
            {"reviewerID": "tgt-only", "asin": "m2", "overall": 2, "summary": "s",
             "reviewText": "t"},
        ])
        dataset = load_cross_domain_jsonl(src, tgt, "books", "movies",
                                          overlap_only=True)
        assert dataset.source.users == {"shared"}
        assert dataset.target.users == {"shared"}

    def test_without_filter_keeps_everyone(self, tmp_path):
        src = tmp_path / "src.jsonl"
        tgt = tmp_path / "tgt.jsonl"
        write_jsonl(src, [{"reviewerID": "a", "asin": "b1", "overall": 5,
                           "summary": "s", "reviewText": "t"}])
        write_jsonl(tgt, [{"reviewerID": "b", "asin": "m1", "overall": 3,
                           "summary": "s", "reviewText": "t"}])
        dataset = load_cross_domain_jsonl(src, tgt, "books", "movies")
        assert dataset.overlapping_users == set()
        assert dataset.source.users == {"a"}


class TestTelemetryEvents:
    def test_load_and_save_emit_dataset_events(self, tmp_path):
        from repro.obs import TelemetrySink, read_events, use_sink

        path = tmp_path / "books.jsonl"
        write_jsonl(path, AMAZON_RECORDS)
        sink = TelemetrySink(tmp_path / "obs", run_id="io-test")
        with use_sink(sink):
            domain = load_domain_jsonl(path, "books")
            save_domain_jsonl(domain, tmp_path / "out.jsonl")
        sink.close()
        events = read_events(sink.path)
        [load] = [e for e in events if e["kind"] == "dataset_load"]
        assert load["domain"] == "books"
        assert load["records"] == 2
        assert load["skipped"] == 0
        [save] = [e for e in events if e["kind"] == "dataset_save"]
        assert save["records"] == 2
        assert save["path"].endswith("out.jsonl")

    def test_no_sink_no_events_no_crash(self, tmp_path):
        path = tmp_path / "books.jsonl"
        write_jsonl(path, AMAZON_RECORDS)
        domain = load_domain_jsonl(path, "books")
        assert len(domain.reviews) == 2
