"""Tests for dataset statistics."""

import pytest

from repro.data import (
    CrossDomainDataset,
    DomainData,
    Review,
    cross_domain_stats,
    domain_stats,
    format_stats,
)


def make_domain():
    return DomainData("books", [
        Review("u1", "i1", 5.0, "a"),
        Review("u1", "i2", 3.0, "b"),
        Review("u2", "i1", 5.0, "c"),
    ])


class TestDomainStats:
    def test_counts(self):
        stats = domain_stats(make_domain())
        assert stats.num_users == 2
        assert stats.num_items == 2
        assert stats.num_reviews == 3

    def test_rating_histogram_complete(self):
        stats = domain_stats(make_domain())
        assert stats.rating_histogram[5.0] == 2
        assert stats.rating_histogram[3.0] == 1
        assert stats.rating_histogram[1.0] == 0

    def test_mean_rating(self):
        assert domain_stats(make_domain()).mean_rating == pytest.approx(13 / 3)

    def test_reviews_per_user(self):
        stats = domain_stats(make_domain())
        assert stats.reviews_per_user_mean == pytest.approx(1.5)
        assert stats.reviews_per_user_median == pytest.approx(1.5)

    def test_empty_domain(self):
        stats = domain_stats(DomainData("empty", []))
        assert stats.num_reviews == 0
        assert stats.mean_rating == 0.0


class TestCrossDomainStats:
    def test_overlap_fields(self):
        source = make_domain()
        target = DomainData("movies", [Review("u1", "m1", 4.0, "x")])
        stats = cross_domain_stats(CrossDomainDataset(source, target))
        assert stats["overlap_users"] == 1
        assert stats["overlap_fraction_of_target"] == 1.0
        assert stats["overlap_fraction_of_source"] == 0.5

    def test_format_is_readable(self):
        source = make_domain()
        target = DomainData("movies", [Review("u1", "m1", 4.0, "x")])
        text = format_stats(CrossDomainDataset(source, target))
        assert "books -> movies" in text
        assert "density" in text
        assert "overlap" in text
