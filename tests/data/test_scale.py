"""scale_target_catalog + DocumentStore.with_dataset: post-training growth."""

import numpy as np
import pytest

from repro.data import (
    DocumentStore,
    GeneratorConfig,
    cold_start_split,
    generate_domain_pair,
    scale_target_catalog,
)


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=40, num_items_per_domain=20,
                        reviews_per_user_mean=4.0, seed=5),
    )
    return dataset, cold_start_split(dataset, seed=1)


class TestScaleTargetCatalog:
    def test_grows_only_the_target_catalog(self, world):
        dataset, split = world
        grown = scale_target_catalog(dataset, 50, seed=2)
        assert len(grown.target.items) == len(dataset.target.items) + 50
        assert grown.source is dataset.source
        assert grown.metadata["scaled_items"] == 50

    def test_new_reviewers_are_disjoint_from_original_users(self, world):
        dataset, split = world
        grown = scale_target_catalog(dataset, 30, seed=2)
        new_reviews = grown.target.reviews[len(dataset.target.reviews):]
        new_users = {r.user_id for r in new_reviews}
        original = dataset.source.users | dataset.target.users
        assert new_users.isdisjoint(original)
        assert new_users.isdisjoint(split.cold_users)

    def test_original_dataset_and_split_untouched(self, world):
        dataset, split = world
        before = list(dataset.target.reviews)
        scale_target_catalog(dataset, 25, seed=3)
        assert dataset.target.reviews == before
        assert cold_start_split(dataset, seed=1).cold_users == split.cold_users

    def test_deterministic_per_seed(self, world):
        dataset, _ = world
        a = scale_target_catalog(dataset, 20, seed=4)
        b = scale_target_catalog(dataset, 20, seed=4)
        c = scale_target_catalog(dataset, 20, seed=5)
        assert [r.summary for r in a.target.reviews] == [
            r.summary for r in b.target.reviews
        ]
        assert [r.summary for r in a.target.reviews] != [
            r.summary for r in c.target.reviews
        ]

    def test_every_new_item_has_reviews(self, world):
        dataset, _ = world
        grown = scale_target_catalog(dataset, 15, reviews_per_item=3, seed=0)
        new_items = grown.target.items - dataset.target.items
        assert len(new_items) == 15
        for item_id in new_items:
            assert len(grown.target.reviews_of_item(item_id)) == 3

    def test_summaries_use_known_lexicons(self, world):
        # Word choice is vectorized over rectangular lexicon tables; make
        # sure nothing leaks outside the generator's vocabulary universe.
        from repro.data.synthetic import DOMAIN_WORDS, SENTIMENT, TOPICS

        dataset, _ = world
        grown = scale_target_catalog(dataset, 10, seed=7)
        lexicon = set(DOMAIN_WORDS[grown.target.name])
        for words in TOPICS.values():
            lexicon.update(words)
        for words in SENTIMENT.values():
            lexicon.update(words)
        for review in grown.target.reviews[len(dataset.target.reviews):]:
            assert set(review.summary.split()) <= lexicon

    def test_zero_and_invalid_args(self, world):
        dataset, _ = world
        assert scale_target_catalog(dataset, 0) is dataset
        with pytest.raises(ValueError, match="extra_items"):
            scale_target_catalog(dataset, -1)
        with pytest.raises(ValueError, match="reviews_per_item"):
            scale_target_catalog(dataset, 5, reviews_per_item=0)


class TestWithDataset:
    def test_frozen_vocab_and_identical_old_docs(self, world):
        dataset, split = world
        store = DocumentStore(dataset, split, doc_len=24, vocab_size=300)
        grown = scale_target_catalog(dataset, 40, seed=2)
        rebuilt = store.with_dataset(grown)
        assert rebuilt.vocab is store.vocab
        for item_id in sorted(dataset.target.items)[:5]:
            np.testing.assert_array_equal(
                rebuilt.item_doc(item_id), store.item_doc(item_id)
            )
        for user_id in split.train_users[:3]:
            np.testing.assert_array_equal(
                rebuilt.user_target_doc(user_id), store.user_target_doc(user_id)
            )

    def test_new_items_encode_through_old_vocab(self, world):
        dataset, split = world
        store = DocumentStore(dataset, split, doc_len=24, vocab_size=300)
        grown = scale_target_catalog(dataset, 40, seed=2)
        rebuilt = store.with_dataset(grown)
        new_item = sorted(grown.target.items - dataset.target.items)[0]
        doc = rebuilt.item_doc(new_item)
        assert doc.shape == (24,)
        assert doc.max() < len(store.vocab)
