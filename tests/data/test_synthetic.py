"""Unit tests for the synthetic cross-domain corpus generator."""

import numpy as np
import pytest

from repro.data import (
    DATASET_PROFILES,
    TOPICS,
    GeneratorConfig,
    generate_domain_pair,
    generate_scenario,
)
from repro.data.synthetic import DOMAIN_WORDS, SENTIMENT


def small_config(**overrides):
    base = dict(num_users=80, num_items_per_domain=40, reviews_per_user_mean=5.0, seed=5)
    base.update(overrides)
    return GeneratorConfig(**base)


class TestGeneration:
    def test_deterministic(self):
        a = generate_domain_pair("books", "movies", small_config())
        b = generate_domain_pair("books", "movies", small_config())
        assert [r.summary for r in a.source.reviews] == [r.summary for r in b.source.reviews]
        assert [r.rating for r in a.target.reviews] == [r.rating for r in b.target.reviews]

    def test_different_seeds_differ(self):
        a = generate_domain_pair("books", "movies", small_config(seed=1))
        b = generate_domain_pair("books", "movies", small_config(seed=2))
        assert [r.rating for r in a.target.reviews] != [r.rating for r in b.target.reviews]

    def test_scenario_salt_differs_by_pair(self):
        a = generate_scenario("amazon", "books", "movies", num_users=80,
                              num_items_per_domain=40)
        b = generate_scenario("amazon", "movies", "music", num_users=80,
                              num_items_per_domain=40)
        assert len(a.target) != len(b.target) or (
            [r.rating for r in a.target.reviews] != [r.rating for r in b.target.reviews]
        )

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_domain_pair("books", "gardening", small_config())

    def test_same_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_domain_pair("books", "books", small_config())

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            generate_scenario("netflix", "books", "movies")

    def test_overlap_fraction_respected(self):
        config = small_config(overlap_fraction=0.5)
        dataset = generate_domain_pair("books", "movies", config)
        overlap = len(dataset.overlapping_users)
        assert abs(overlap - 40) <= 2  # 0.5 * 80

    def test_ratings_in_range(self):
        dataset = generate_domain_pair("books", "movies", small_config())
        for review in dataset.source.reviews + dataset.target.reviews:
            assert review.rating in (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_min_reviews_per_user(self):
        config = small_config(reviews_per_user_min=3)
        dataset = generate_domain_pair("books", "movies", config)
        for user in dataset.target.users:
            assert len(dataset.target.reviews_of_user(user)) >= 3

    def test_summary_contains_domain_word(self):
        dataset = generate_domain_pair("books", "movies", small_config())
        domain_words = set(DOMAIN_WORDS["movies"])
        hits = sum(
            1 for r in dataset.target.reviews if domain_words & set(r.summary.split())
        )
        assert hits == len(dataset.target)

    def test_summary_sentiment_matches_rating(self):
        dataset = generate_domain_pair("books", "movies", small_config())
        for review in dataset.target.reviews[:200]:
            level_words = set(SENTIMENT[int(review.rating)])
            assert level_words & set(review.summary.split())

    def test_text_longer_than_summary(self):
        dataset = generate_domain_pair("books", "movies", small_config())
        for review in dataset.target.reviews[:50]:
            assert len(review.text.split()) > len(review.summary.split())

    def test_generator_overrides_via_scenario(self):
        dataset = generate_scenario(
            "amazon", "books", "music", num_users=60, num_items_per_domain=30
        )
        assert len(dataset.source.users | dataset.target.users) <= 60


class TestPaperAssumptions:
    """The generator must make the paper's two assumptions true in the data."""

    def test_assumption1_cross_domain_rating_consistency(self):
        """Overlapping users' mean ratings correlate across domains."""
        dataset = generate_domain_pair(
            "books", "movies", small_config(num_users=200, reviews_per_user_mean=8.0)
        )
        xs, ys = [], []
        for user in dataset.overlapping_users:
            xs.append(np.mean([r.rating for r in dataset.source.reviews_of_user(user)]))
            ys.append(np.mean([r.rating for r in dataset.target.reviews_of_user(user)]))
        assert np.corrcoef(xs, ys)[0, 1] > 0.2

    def test_assumption2_like_minded_pool_nonempty(self):
        """Most interactions have at least one like-minded co-rater."""
        dataset = generate_domain_pair(
            "books", "movies", small_config(num_users=200, reviews_per_user_mean=8.0)
        )
        with_pool = 0
        total = 0
        for review in dataset.source.reviews[:500]:
            total += 1
            pool = dataset.source.like_minded_users(review.item_id, review.rating)
            if len(pool) > 1:  # someone besides the author
                with_pool += 1
        assert with_pool / total > 0.5

    def test_rating_distribution_not_degenerate(self):
        dataset = generate_domain_pair("books", "movies", small_config(num_users=200))
        ratings = [r.rating for r in dataset.target.reviews]
        counts = {k: ratings.count(k) for k in (1.0, 2.0, 3.0, 4.0, 5.0)}
        assert all(c > 0 for c in counts.values())
        assert max(counts.values()) / len(ratings) < 0.6


class TestProfiles:
    def test_profiles_exist(self):
        assert set(DATASET_PROFILES) == {"amazon", "douban"}

    def test_douban_denser_reviews(self):
        assert (
            DATASET_PROFILES["douban"].reviews_per_user_mean
            != DATASET_PROFILES["amazon"].reviews_per_user_mean
        )

    def test_topics_have_enough_words(self):
        for topic, words in TOPICS.items():
            assert len(words) >= 10, topic
            assert len(set(words)) == len(words)
