"""Property-based tests: DomainData index invariants under arbitrary inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import CrossDomainDataset, DomainData, Review

ratings = st.sampled_from([1.0, 2.0, 3.0, 4.0, 5.0])
user_ids = st.sampled_from([f"u{i}" for i in range(8)])
item_ids = st.sampled_from([f"i{i}" for i in range(6)])

reviews = st.builds(
    Review,
    user_id=user_ids,
    item_id=item_ids,
    rating=ratings,
    summary=st.text(alphabet="abcde ", min_size=1, max_size=20),
)

review_lists = st.lists(reviews, min_size=0, max_size=40)


class TestIndexInvariants:
    @given(review_lists)
    @settings(max_examples=50, deadline=None)
    def test_by_user_partitions_reviews(self, rs):
        domain = DomainData("d", rs)
        total = sum(len(v) for v in domain.by_user.values())
        assert total == len(rs)

    @given(review_lists)
    @settings(max_examples=50, deadline=None)
    def test_by_item_partitions_reviews(self, rs):
        domain = DomainData("d", rs)
        total = sum(len(v) for v in domain.by_item.values())
        assert total == len(rs)

    @given(review_lists)
    @settings(max_examples=50, deadline=None)
    def test_like_minded_index_consistent(self, rs):
        domain = DomainData("d", rs)
        for review in rs:
            pool = domain.like_minded_users(review.item_id, review.rating)
            assert review.user_id in pool

    @given(review_lists)
    @settings(max_examples=50, deadline=None)
    def test_like_minded_entries_are_real_reviews(self, rs):
        domain = DomainData("d", rs)
        for (item, rating), users in domain.like_minded.items():
            for user in users:
                assert any(
                    r.item_id == item and r.rating == rating
                    for r in domain.reviews_of_user(user)
                )

    @given(review_lists)
    @settings(max_examples=50, deadline=None)
    def test_users_match_by_user_keys(self, rs):
        domain = DomainData("d", rs)
        assert domain.users == set(domain.by_user)

    @given(review_lists, review_lists)
    @settings(max_examples=30, deadline=None)
    def test_overlap_is_intersection(self, source_reviews, target_reviews):
        dataset = CrossDomainDataset(
            DomainData("s", source_reviews), DomainData("t", target_reviews)
        )
        expected = {r.user_id for r in source_reviews} & {
            r.user_id for r in target_reviews
        }
        assert dataset.overlapping_users == expected

    @given(review_lists)
    @settings(max_examples=30, deadline=None)
    def test_density_bounds(self, rs):
        domain = DomainData("d", rs)
        assert 0.0 <= domain.density() <= 1.0 or len(rs) > len(domain.users) * len(domain.items)
