"""Unit and property tests for the cold-start split protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair


def dataset(seed=5):
    return generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=100, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=seed),
    )


class TestProtocolInvariants:
    def test_partitions_are_disjoint(self):
        split = cold_start_split(dataset(), seed=0)
        train = set(split.train_users)
        valid = set(split.valid_users)
        test = set(split.test_users)
        assert not train & valid
        assert not train & test
        assert not valid & test

    def test_all_users_are_overlapping(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        overlap = ds.overlapping_users
        for user in split.train_users + split.valid_users + split.test_users:
            assert user in overlap

    def test_cold_fraction_default(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        total = len(ds.overlapping_users)
        cold = len(split.cold_users)
        assert abs(cold - 0.2 * total) <= 2

    def test_validation_test_halves(self):
        split = cold_start_split(dataset(), seed=0)
        assert abs(len(split.valid_users) - len(split.test_users)) <= 1

    def test_deterministic_given_seed(self):
        ds = dataset()
        a = cold_start_split(ds, seed=3)
        b = cold_start_split(ds, seed=3)
        assert a.train_users == b.train_users
        assert a.test_users == b.test_users

    def test_different_seed_differs(self):
        ds = dataset()
        a = cold_start_split(ds, seed=3)
        b = cold_start_split(ds, seed=4)
        assert a.test_users != b.test_users

    def test_train_fraction_reduces_train_only(self):
        ds = dataset()
        full = cold_start_split(ds, seed=0, train_fraction=1.0)
        half = cold_start_split(ds, seed=0, train_fraction=0.5)
        assert abs(len(half.train_users) - len(full.train_users) / 2) <= 1
        # evaluation population unchanged (Table 4 requirement)
        assert half.test_users == full.test_users
        assert half.valid_users == full.valid_users

    def test_invalid_fractions(self):
        ds = dataset()
        with pytest.raises(ValueError):
            cold_start_split(ds, cold_fraction=0.0)
        with pytest.raises(ValueError):
            cold_start_split(ds, cold_fraction=1.0)
        with pytest.raises(ValueError):
            cold_start_split(ds, train_fraction=0.0)

    def test_too_few_overlap_users(self):
        from repro.data import CrossDomainDataset, DomainData, Review

        src = DomainData("books", [Review("u1", "i1", 5.0, "x")])
        tgt = DomainData("movies", [Review("u1", "m1", 5.0, "x")])
        with pytest.raises(ValueError):
            cold_start_split(CrossDomainDataset(src, tgt))

    @given(st.integers(0, 50), st.sampled_from([1.0, 0.8, 0.5, 0.2]))
    @settings(max_examples=15, deadline=None)
    def test_property_counts_consistent(self, seed, fraction):
        ds = dataset()
        split = cold_start_split(ds, seed=seed, train_fraction=fraction)
        assert len(split.train_users) >= 1
        assert len(split.cold_users) == len(split.valid_users) + len(split.test_users)


class TestEvalInteractions:
    def test_eval_interactions_belong_to_subset_users(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        test_users = set(split.test_users)
        for review in split.eval_interactions(ds, "test"):
            assert review.user_id in test_users

    def test_eval_interactions_are_target_domain(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        target_items = ds.target.items
        for review in split.eval_interactions(ds, "valid"):
            assert review.item_id in target_items

    def test_invalid_subset_rejected(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        with pytest.raises(ValueError):
            split.eval_interactions(ds, "train")

    def test_train_interactions_from_train_users(self):
        ds = dataset()
        split = cold_start_split(ds, seed=0)
        train_users = set(split.train_users)
        interactions = split.train_interactions(ds)
        assert interactions
        assert all(r.user_id in train_users for r in interactions)
