"""Unit tests for the document store (visibility!) and batch iteration."""

import numpy as np
import pytest

from repro.data import (
    DocumentStore,
    GeneratorConfig,
    cold_start_split,
    generate_domain_pair,
    iter_batches,
)


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=100, num_items_per_domain=40,
                        reviews_per_user_mean=5.0, seed=9),
    )
    split = cold_start_split(dataset, seed=2)
    store = DocumentStore(dataset, split, doc_len=32, vocab_size=500)
    return dataset, split, store


class TestVisibilityRules:
    def test_cold_user_target_doc_blocked(self, world):
        _, split, store = world
        with pytest.raises(KeyError):
            store.user_target_doc(split.test_users[0])

    def test_cold_user_source_doc_available(self, world):
        _, split, store = world
        doc = store.user_source_doc(split.test_users[0])
        assert doc.shape == (32,)
        assert doc.sum() > 0  # not all padding

    def test_train_user_target_doc_available(self, world):
        _, split, store = world
        assert store.user_target_doc(split.train_users[0]).shape == (32,)

    def test_item_docs_exclude_cold_reviews(self, world):
        dataset, split, _ = world
        cold = set(split.cold_users)
        # rebuild a store with a tiny doc budget to inspect encoded text
        store = DocumentStore(dataset, split, doc_len=512, vocab_size=2000)
        # pick an item reviewed by a cold user with a distinctive check:
        # decoding the item doc must only contain tokens from visible reviews
        for item in sorted(dataset.target.items):
            reviews = dataset.target.reviews_of_item(item)
            cold_reviews = [r for r in reviews if r.user_id in cold]
            visible = [r for r in reviews if r.user_id not in cold]
            if cold_reviews and visible:
                doc_tokens = store.vocab.decode(store.item_doc(item))
                visible_words = set()
                for r in visible:
                    visible_words.update(r.summary.split())
                visible_words.add("<sp>")
                unk = store.vocab.token_at(store.vocab.unk_index)
                for tok in doc_tokens:
                    assert tok in visible_words or tok == unk
                return
        pytest.skip("no item with both cold and visible reviews in this world")

    def test_vocab_excludes_cold_target_text(self, world):
        dataset, split, store = world
        corpus_size = len(store.visible_token_documents())
        cold = set(split.cold_users)
        hidden = sum(1 for r in dataset.target.reviews if r.user_id in cold)
        assert corpus_size == len(dataset.source.reviews) + len(dataset.target.reviews) - hidden


class TestEncoding:
    def test_fixed_length(self, world):
        _, _, store = world
        assert store.encode_reviews(["one short review"]).shape == (32,)

    def test_empty_reviews_all_pad(self, world):
        _, _, store = world
        np.testing.assert_allclose(store.encode_reviews([]), 0)

    def test_caching_returns_same_array(self, world):
        _, split, store = world
        u = split.train_users[0]
        assert store.user_source_doc(u) is store.user_source_doc(u)

    def test_separator_encoded_not_unk(self, world):
        _, _, store = world
        ids = store.encode_reviews(["first", "second"])
        assert store.vocab.index_of("<sp>") in ids.tolist()
        assert store.vocab.index_of("<sp>") != store.vocab.unk_index

    def test_invalid_field_rejected(self, world):
        dataset, split, _ = world
        with pytest.raises(ValueError):
            DocumentStore(dataset, split, field="title")

    def test_text_field_gives_different_docs(self, world):
        dataset, split, _ = world
        summary_store = DocumentStore(dataset, split, doc_len=32, field="summary")
        text_store = DocumentStore(dataset, split, doc_len=32, field="text")
        u = split.train_users[0]
        assert not np.array_equal(
            summary_store.user_source_doc(u), text_store.user_source_doc(u)
        )


class TestDocumentMatrices:
    def test_memoized(self, world):
        _, _, store = world
        assert store.build_matrices() is store.build_matrices()

    def test_shapes_and_dtype(self, world):
        dataset, _, store = world
        matrices = store.build_matrices()
        num_users = len(dataset.source.users | dataset.target.users)
        num_items = len(dataset.target.items)
        assert matrices.source.shape == (num_users, 32)
        assert matrices.target.shape == (num_users, 32)
        assert matrices.items.shape == (num_items, 32)
        assert matrices.source.dtype == np.int32
        assert matrices.target.dtype == np.int32
        assert matrices.items.dtype == np.int32
        assert matrices.target_valid.shape == (num_users,)

    def test_rows_match_per_user_docs(self, world):
        dataset, split, store = world
        matrices = store.build_matrices()
        for user in split.train_users[:5]:
            slot = matrices.user_slot(user)
            np.testing.assert_array_equal(
                matrices.source[slot], store.user_source_doc(user)
            )
            np.testing.assert_array_equal(
                matrices.target[slot], store.user_target_doc(user)
            )
            assert matrices.target_valid[slot]
        for item in sorted(dataset.target.items)[:5]:
            np.testing.assert_array_equal(
                matrices.items[matrices.item_slot(item)], store.item_doc(item)
            )

    def test_cold_user_target_rows_blanked(self, world):
        _, split, store = world
        matrices = store.build_matrices()
        for user in split.cold_users[:5]:
            slot = matrices.user_slot(user)
            assert not matrices.target_valid[slot]
            np.testing.assert_allclose(matrices.target[slot], 0)

    def test_slot_tables_cover_everyone(self, world):
        dataset, _, store = world
        matrices = store.build_matrices()
        assert set(matrices.user_slots) == dataset.source.users | dataset.target.users
        assert set(matrices.item_slots) == dataset.target.items


class TestIterBatches:
    def test_covers_all_items_once(self):
        items = list(range(25))
        rng = np.random.default_rng(0)
        seen = []
        for batch in iter_batches(items, 4, rng):
            seen.extend(batch)
        assert sorted(seen) == items

    def test_batch_sizes(self):
        rng = np.random.default_rng(0)
        sizes = [len(b) for b in iter_batches(list(range(10)), 4, rng)]
        assert sizes == [4, 4, 2]

    def test_shuffle_changes_order(self):
        items = list(range(100))
        a = [x for b in iter_batches(items, 10, np.random.default_rng(1)) for x in b]
        b = [x for b in iter_batches(items, 10, np.random.default_rng(2)) for x in b]
        assert a != b

    def test_no_shuffle_preserves_order(self):
        items = list(range(10))
        rng = np.random.default_rng(0)
        flat = [x for b in iter_batches(items, 3, rng, shuffle=False) for x in b]
        assert flat == items

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            list(iter_batches([1], 0, np.random.default_rng(0)))
