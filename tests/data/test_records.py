"""Unit tests for review records and domain indexes."""

import pytest

from repro.data import CrossDomainDataset, DomainData, Review


def make_reviews():
    return [
        Review("u1", "i1", 5.0, "great book", "really a great book overall"),
        Review("u1", "i2", 3.0, "okay read"),
        Review("u2", "i1", 5.0, "loved it"),
        Review("u3", "i1", 2.0, "weak plot"),
    ]


class TestReview:
    def test_rating_validation(self):
        with pytest.raises(ValueError):
            Review("u", "i", 3.5, "half stars not allowed")
        with pytest.raises(ValueError):
            Review("u", "i", 0.0, "zero")

    def test_rating_index_zero_based(self):
        assert Review("u", "i", 1.0, "x").rating_index == 0
        assert Review("u", "i", 5.0, "x").rating_index == 4

    def test_frozen(self):
        review = Review("u", "i", 4.0, "x")
        with pytest.raises(AttributeError):
            review.rating = 5.0


class TestDomainData:
    def test_by_user_index(self):
        domain = DomainData("books", make_reviews())
        assert len(domain.reviews_of_user("u1")) == 2
        assert domain.reviews_of_user("missing") == []

    def test_by_item_index(self):
        domain = DomainData("books", make_reviews())
        assert len(domain.reviews_of_item("i1")) == 3

    def test_like_minded_index(self):
        domain = DomainData("books", make_reviews())
        assert sorted(domain.like_minded_users("i1", 5.0)) == ["u1", "u2"]
        assert domain.like_minded_users("i1", 2.0) == ["u3"]
        assert domain.like_minded_users("i1", 4.0) == []

    def test_users_items_sets(self):
        domain = DomainData("books", make_reviews())
        assert domain.users == {"u1", "u2", "u3"}
        assert domain.items == {"i1", "i2"}

    def test_summaries_and_texts(self):
        domain = DomainData("books", make_reviews())
        assert domain.user_summaries("u1") == ["great book", "okay read"]
        # text falls back to summary when empty
        assert domain.user_texts("u1")[1] == "okay read"
        assert domain.item_summaries("i1") == ["great book", "loved it", "weak plot"]

    def test_density(self):
        domain = DomainData("books", make_reviews())
        assert domain.density() == pytest.approx(4 / (3 * 2))

    def test_empty_domain(self):
        domain = DomainData("books", [])
        assert len(domain) == 0
        assert domain.density() == 0.0


class TestCrossDomainDataset:
    def test_overlapping_users(self):
        src = DomainData("books", make_reviews())
        tgt = DomainData(
            "movies", [Review("u1", "m1", 4.0, "fun"), Review("u9", "m1", 2.0, "dull")]
        )
        dataset = CrossDomainDataset(src, tgt)
        assert dataset.overlapping_users == {"u1"}

    def test_scenario_string(self):
        dataset = CrossDomainDataset(DomainData("books", []), DomainData("movies", []))
        assert dataset.scenario == "books -> movies"

    def test_summary_keys(self):
        src = DomainData("books", make_reviews())
        tgt = DomainData("movies", [Review("u1", "m1", 4.0, "fun")])
        card = CrossDomainDataset(src, tgt).summary()
        assert card["overlap_users"] == 1
        assert card["source_reviews"] == 4
        assert card["target_items"] == 1
