import pytest

from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair

from .helpers import WORLD_PARAMS


@pytest.fixture(scope="package")
def world():
    dataset = generate_domain_pair(
        "books", "movies", GeneratorConfig(**WORLD_PARAMS)
    )
    split = cold_start_split(dataset, seed=1)
    return dataset, split
