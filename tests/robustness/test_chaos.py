"""Seed-driven chaos sweeps: kill the trainer at a random (epoch, batch),
resume, and demand bit-identical equivalence with the uninterrupted run;
corrupt a random checkpoint artifact and demand detection. Every seed is
explicit, so a failing sweep reproduces exactly.

``REPRO_CHAOS_FAST=1`` (set by CI) shrinks the seed sweep.
"""

import shutil

import numpy as np
import pytest

from repro.core import (
    CheckpointError,
    OmniMatchTrainer,
    find_latest_checkpoint,
    read_training_checkpoint,
)
from repro.faults import (
    CompositeInjector,
    CrashInjector,
    NonFiniteGradientInjector,
    SimulatedCrash,
    flip_random_bit,
    random_crash_point,
)

from .helpers import (
    CHAOS_SEEDS,
    assert_histories_identical,
    assert_states_identical,
    batches_per_epoch,
    tiny_config,
    train_uninterrupted,
)

EPOCHS = 4
PAYLOADS = ["config.json", "weights.npz", "optimizer.npz", "trainer_state.json"]


@pytest.fixture(scope="module")
def baseline(world):
    return train_uninterrupted(world, tiny_config(), EPOCHS)


@pytest.fixture(scope="module")
def chaos_run(world, tmp_path_factory):
    """One pristine checkpointed run shared by the corruption sweeps."""
    run_dir = tmp_path_factory.mktemp("chaos-pristine")
    dataset, split = world
    trainer = OmniMatchTrainer(dataset, split, tiny_config())
    trainer.fit(2, checkpoint_every=1, checkpoint_dir=run_dir, keep_last=1)
    return run_dir


class TestKillResumeSweep:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_random_kill_point_resumes_bit_identical(
        self, world, tmp_path, baseline, seed
    ):
        config = tiny_config()
        epoch, batch = random_crash_point(
            seed, EPOCHS, batches_per_epoch(world, config)
        )
        dataset, split = world
        doomed = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(SimulatedCrash):
            doomed.fit(
                EPOCHS,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                fault_injector=CrashInjector(epoch=epoch, batch=batch),
            )
        fresh = OmniMatchTrainer(dataset, split, config)
        if find_latest_checkpoint(tmp_path) is None:
            # Killed before the first checkpoint landed: resume must refuse
            # with a diagnostic, and a from-scratch run is the recovery.
            assert epoch == 1
            with pytest.raises(CheckpointError, match="no valid"):
                fresh.fit(EPOCHS, resume_from=tmp_path)
            resumed = OmniMatchTrainer(dataset, split, config).fit(EPOCHS)
        else:
            resumed = fresh.fit(EPOCHS, resume_from=tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_kill_after_divergence_recovery_still_resumes(self, world, tmp_path):
        """Recovery state (backed-off lr, health log) must survive the
        checkpoint round-trip: a run that diverged at epoch 1, recovered,
        and was killed at epoch 3 resumes bit-identically — the fault is
        already baked into the checkpoint, so no replay is needed."""
        config = tiny_config()
        dataset, split = world
        reference = OmniMatchTrainer(dataset, split, config)
        gold = reference.fit(
            EPOCHS,
            fault_injector=NonFiniteGradientInjector(epoch=1, batch=0),
        )
        doomed = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(SimulatedCrash):
            doomed.fit(
                EPOCHS,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                fault_injector=CompositeInjector([
                    NonFiniteGradientInjector(epoch=1, batch=0),
                    CrashInjector(epoch=3, batch=0),
                ]),
            )
        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(EPOCHS, resume_from=tmp_path)
        assert_states_identical(
            gold.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(gold.history, resumed.history)
        assert "lr_backoff" in [e.kind for e in resumed.health]


class TestRandomCorruptionSweep:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_random_bit_flip_always_detected(self, chaos_run, tmp_path, seed):
        run_dir = tmp_path / "run"
        shutil.copytree(chaos_run, run_dir)
        checkpoint = find_latest_checkpoint(run_dir)
        assert checkpoint is not None
        rng = np.random.default_rng(seed)
        target = PAYLOADS[int(rng.integers(len(PAYLOADS)))]
        offset = flip_random_bit(checkpoint / target, seed=seed)
        with pytest.raises(CheckpointError):
            read_training_checkpoint(checkpoint)
        assert offset >= 0  # fault coordinates are reportable on failure
