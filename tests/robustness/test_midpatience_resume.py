"""Kill-and-resume *mid-patience*: the early-stopping bookkeeping
(``best_rmse``, ``stale`` counter), a backed-off learning rate, and the
divergence retry budget are all training state — a run killed while any of
them is non-default and then resumed must behave bit-identically to the
uninterrupted run, stopping at the same epoch and tolerating the same
total number of divergences. The ASHA tuner's rung-resume depends on this.
"""

import pytest

from repro.core import OmniMatchTrainer, read_training_checkpoint
from repro.core.trainer import TrainingDivergedError
from repro.faults import NonFiniteLossInjector

from .helpers import (
    assert_histories_identical,
    assert_states_identical,
    tiny_config,
    train_uninterrupted,
)


def stale_after(history, epoch):
    """Replay the early-stopping counter over ``history`` up to ``epoch``."""
    best = float("inf")
    stale = 0
    for stats in history:
        if stats.epoch > epoch:
            break
        if stats.valid_rmse < best - 1e-6:
            best = stats.valid_rmse
            stale = 0
        else:
            stale += 1
    return stale


class TestMidPatienceResume:
    """Kill while ``stale`` is non-zero; the resumed run must stop where
    the uninterrupted run stops, not ``patience`` epochs later."""

    def test_world_produces_a_mid_patience_epoch(self, world):
        # Guard for the tests below: with patience=2 the toy world goes
        # stale at epoch 5 and stops at epoch 6, so epoch 5 is a genuine
        # mid-patience kill point. If the generator changes, re-pick one.
        config = tiny_config(early_stopping=True, patience=2)
        baseline = train_uninterrupted(world, config, 12)
        assert len(baseline.history) == 6
        assert stale_after(baseline.history, 5) == 1

    def test_resume_stops_at_same_epoch(self, world, tmp_path):
        config = tiny_config(early_stopping=True, patience=2)
        baseline = train_uninterrupted(world, config, 12)
        dataset, split = world
        first = OmniMatchTrainer(dataset, split, config)
        first.fit(5, checkpoint_every=1, checkpoint_dir=tmp_path)
        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(12, resume_from=tmp_path)
        assert len(resumed.history) == len(baseline.history)
        assert_histories_identical(baseline.history, resumed.history)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )

    def test_checkpoint_carries_stale_and_best(self, world, tmp_path):
        config = tiny_config(early_stopping=True, patience=2)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        trainer.fit(5, checkpoint_every=1, checkpoint_dir=tmp_path)
        loaded = read_training_checkpoint(tmp_path / "epoch-0005")
        assert loaded.stale == 1
        # best-so-far is epoch 4 (the last improvement before going stale)
        assert loaded.best_rmse == loaded.history[3].valid_rmse
        assert loaded.best_state is not None


class TestBackedOffLrResume:
    """A transient divergence backs off ``optimizer.lr``; the backed-off
    rate must survive kill-and-resume so later epochs step identically."""

    def test_lr_backoff_persisted_in_checkpoint(self, world, tmp_path):
        config = tiny_config()
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        trainer.fit(
            3, checkpoint_every=1, checkpoint_dir=tmp_path,
            fault_injector=NonFiniteLossInjector(epoch=2, batch=0),
        )
        loaded = read_training_checkpoint(tmp_path / "epoch-0003")
        expected = config.learning_rate * config.lr_backoff_factor
        assert loaded.optimizer_state["hyper"]["lr"] == pytest.approx(expected)

    def test_resume_after_backoff_is_bit_identical(self, world, tmp_path):
        config = tiny_config()
        baseline = train_uninterrupted(
            world, config, 6,
            fault_injector=NonFiniteLossInjector(epoch=2, batch=0),
        )
        dataset, split = world
        first = OmniMatchTrainer(dataset, split, config)
        first.fit(
            3, checkpoint_every=1, checkpoint_dir=tmp_path,
            fault_injector=NonFiniteLossInjector(epoch=2, batch=0),
        )
        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(6, resume_from=tmp_path)
        assert_histories_identical(baseline.history, resumed.history)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        # The backoff happened exactly once, before the kill.
        assert sum(1 for e in resumed.health if e.kind == "lr_backoff") == 1


class TestRetryBudgetResume:
    """Regression: ``retries_left`` used to reset to the full
    ``max_divergence_retries`` on resume, so a killed-and-resumed run
    tolerated more divergences in total than an uninterrupted one."""

    def test_uninterrupted_budget_exhausts(self, world):
        config = tiny_config(max_divergence_retries=1)
        with pytest.raises(TrainingDivergedError):
            train_uninterrupted(
                world, config, 6,
                fault_injector=NonFiniteLossInjector(epoch=4, batch=0, repeat=True),
            )

    def test_resumed_run_does_not_regain_spent_retries(self, world, tmp_path):
        config = tiny_config(max_divergence_retries=1)
        dataset, split = world
        first = OmniMatchTrainer(dataset, split, config)
        # Epoch 2 diverges once (transient): the single retry is spent,
        # training recovers, and epoch 3's checkpoint records the rollback.
        first.fit(
            3, checkpoint_every=1, checkpoint_dir=tmp_path,
            fault_injector=NonFiniteLossInjector(epoch=2, batch=0),
        )
        fresh = OmniMatchTrainer(dataset, split, config)
        # A second divergence after resume must exhaust the budget — the
        # rollback spent before the kill still counts.
        with pytest.raises(TrainingDivergedError, match="retry budget"):
            fresh.fit(
                6, resume_from=tmp_path,
                fault_injector=NonFiniteLossInjector(epoch=5, batch=0, repeat=True),
            )

    def test_unspent_budget_survives_resume(self, world, tmp_path):
        config = tiny_config(max_divergence_retries=1)
        dataset, split = world
        first = OmniMatchTrainer(dataset, split, config)
        first.fit(2, checkpoint_every=1, checkpoint_dir=tmp_path)
        fresh = OmniMatchTrainer(dataset, split, config)
        # No rollbacks before the kill: the resumed run still has its one
        # retry and recovers from a single transient divergence.
        resumed = fresh.fit(
            5, resume_from=tmp_path,
            fault_injector=NonFiniteLossInjector(epoch=4, batch=0),
        )
        assert sum(1 for e in resumed.health if e.kind == "rollback") == 1
        assert len(resumed.history) == 5


class TestCooperativePreemption:
    """``stop_check`` stops at an epoch boundary with a checkpoint, so a
    preempted-then-resumed run is bit-identical to an uninterrupted one."""

    def test_preempt_checkpoints_off_cadence_and_resumes(self, world, tmp_path):
        config = tiny_config()
        baseline = train_uninterrupted(world, config, 6)
        dataset, split = world
        polls = []

        def stop_after_two_epochs():
            polls.append(1)
            return len(polls) >= 2

        first = OmniMatchTrainer(dataset, split, config)
        preempted = first.fit(
            6, checkpoint_every=3, checkpoint_dir=tmp_path,
            stop_check=stop_after_two_epochs,
        )
        assert len(preempted.history) == 2
        assert any(e.kind == "preempt" for e in preempted.health)
        # Epoch 2 is off the checkpoint_every=3 cadence, but preemption
        # forces a checkpoint there so no work is lost.
        assert (tmp_path / "epoch-0002" / "MANIFEST.json").exists()

        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(6, resume_from=tmp_path)
        assert_histories_identical(baseline.history, resumed.history)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )

    def test_stop_check_false_never_stops(self, world):
        config = tiny_config()
        result = train_uninterrupted(world, config, 3, stop_check=lambda: False)
        assert len(result.history) == 3
        assert not any(e.kind == "preempt" for e in result.health)

    def test_preempt_emits_run_end_status(self, world, tmp_path):
        from repro.obs import TelemetrySink, read_events

        config = tiny_config()
        dataset, split = world
        sink = TelemetrySink(tmp_path / "obs", run_id="preempt")
        trainer = OmniMatchTrainer(dataset, split, config, telemetry=sink)
        trainer.fit(
            6, checkpoint_every=1, checkpoint_dir=tmp_path / "run",
            stop_check=lambda: True,
        )
        sink.close()
        [end] = [e for e in read_events(sink.path) if e["kind"] == "run_end"]
        assert end["status"] == "preempted"
        assert end["epochs_trained"] == 1
