"""Kill-resume equivalence: a checkpointed run killed at an epoch boundary
or mid-epoch, then resumed, must reproduce the uninterrupted run bit-for-bit
— weights, per-epoch losses, and early-stopping behaviour — on both the
fast and legacy trainer paths and for both optimizers."""

import numpy as np
import pytest

from repro.core import OmniMatchTrainer
from repro.faults import CrashInjector, SimulatedCrash

from .helpers import (
    assert_histories_identical,
    assert_states_identical,
    tiny_config,
    train_uninterrupted,
)

EPOCHS = 4


def resume_after_partial(world, config, stop_epoch, tmp_path, epochs=EPOCHS):
    """Train ``stop_epoch`` epochs with checkpointing, then resume fresh."""
    dataset, split = world
    first = OmniMatchTrainer(dataset, split, config)
    first.fit(stop_epoch, checkpoint_every=1, checkpoint_dir=tmp_path)
    fresh = OmniMatchTrainer(dataset, split, config)
    return fresh.fit(epochs, resume_from=tmp_path)


class TestEpochBoundaryResume:
    @pytest.mark.parametrize("stop_epoch", [1, 2, 3])
    def test_fast_path(self, world, tmp_path, stop_epoch):
        config = tiny_config()
        baseline = train_uninterrupted(world, config, EPOCHS)
        resumed = resume_after_partial(world, config, stop_epoch, tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_legacy_path(self, world, tmp_path):
        config = tiny_config(legacy_path=True)
        baseline = train_uninterrupted(world, config, EPOCHS)
        resumed = resume_after_partial(world, config, 2, tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_adam_optimizer(self, world, tmp_path):
        config = tiny_config(optimizer="adam")
        baseline = train_uninterrupted(world, config, EPOCHS)
        resumed = resume_after_partial(world, config, 2, tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_early_stopping_bookkeeping_survives(self, world, tmp_path):
        config = tiny_config(early_stopping=True, patience=3)
        baseline = train_uninterrupted(world, config, EPOCHS)
        resumed = resume_after_partial(world, config, 2, tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_resume_records_health_event(self, world, tmp_path):
        config = tiny_config()
        resumed = resume_after_partial(world, config, 2, tmp_path)
        assert any(event.kind == "resume" for event in resumed.health)

    def test_resume_extends_training_past_config_epochs(self, world, tmp_path):
        # config.epochs is a run-length bound, not training state: a
        # checkpoint from an epochs=2 config must resume under epochs=4
        # and land bit-identically on the uninterrupted 4-epoch run.
        dataset, split = world
        baseline = train_uninterrupted(world, tiny_config(epochs=EPOCHS), EPOCHS)
        first = OmniMatchTrainer(dataset, split, tiny_config(epochs=2))
        first.fit(checkpoint_every=1, checkpoint_dir=tmp_path)
        fresh = OmniMatchTrainer(dataset, split, tiny_config(epochs=EPOCHS))
        resumed = fresh.fit(resume_from=tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)

    def test_resume_past_requested_epochs_is_a_noop(self, world, tmp_path):
        config = tiny_config()
        baseline = train_uninterrupted(world, config, 2)
        dataset, split = world
        first = OmniMatchTrainer(dataset, split, config)
        first.fit(2, checkpoint_every=1, checkpoint_dir=tmp_path)
        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(2, resume_from=tmp_path)
        assert len(resumed.history) == 2
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )


class TestMidEpochCrashResume:
    @pytest.mark.parametrize("legacy", [False, True],
                             ids=["fast", "legacy_path"])
    def test_crash_injector_then_resume(self, world, tmp_path, legacy):
        config = tiny_config(legacy_path=legacy)
        baseline = train_uninterrupted(world, config, EPOCHS)
        dataset, split = world
        doomed = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(SimulatedCrash):
            doomed.fit(
                EPOCHS,
                checkpoint_every=1,
                checkpoint_dir=tmp_path,
                fault_injector=CrashInjector(epoch=3, batch=1),
            )
        fresh = OmniMatchTrainer(dataset, split, config)
        resumed = fresh.fit(EPOCHS, resume_from=tmp_path)
        assert_states_identical(
            baseline.model.state_dict(), resumed.model.state_dict()
        )
        assert_histories_identical(baseline.history, resumed.history)


class TestCheckpointMechanics:
    def test_retention_keeps_last_k(self, world, tmp_path):
        config = tiny_config()
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        trainer.fit(4, checkpoint_every=1, checkpoint_dir=tmp_path, keep_last=2)
        epoch_dirs = sorted(
            p.name for p in tmp_path.iterdir() if p.name.startswith("epoch-")
        )
        assert epoch_dirs == ["epoch-0003", "epoch-0004"]

    def test_best_checkpoint_written_and_kept(self, world, tmp_path):
        config = tiny_config(early_stopping=True, patience=4)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        result = trainer.fit(
            4, checkpoint_every=1, checkpoint_dir=tmp_path, keep_last=1
        )
        assert (tmp_path / "best" / "MANIFEST.json").exists()
        from repro.core import read_training_checkpoint

        best = read_training_checkpoint(tmp_path / "best")
        recorded = [s.valid_rmse for s in result.history if s.valid_rmse is not None]
        assert best.best_rmse == min(recorded)

    def test_checkpoint_every_requires_dir(self, world):
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, tiny_config())
        with pytest.raises(ValueError, match="checkpoint_dir"):
            trainer.fit(1, checkpoint_every=1)

    def test_checkpointing_does_not_perturb_training(self, world, tmp_path):
        config = tiny_config()
        baseline = train_uninterrupted(world, config, 3)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        checkpointed = trainer.fit(
            3, checkpoint_every=1, checkpoint_dir=tmp_path
        )
        assert_states_identical(
            baseline.model.state_dict(), checkpointed.model.state_dict()
        )

    def test_empty_validation_with_early_stopping_rejected(self, world):
        from repro.data import ColdStartSplit

        dataset, split = world
        hollow = ColdStartSplit(
            train_users=split.train_users,
            valid_users=(),
            test_users=split.test_users,
        )
        trainer = OmniMatchTrainer(dataset, hollow, tiny_config(early_stopping=True))
        with pytest.raises(ValueError, match="validation split is empty"):
            trainer.fit(1)
