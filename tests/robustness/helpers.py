"""Shared fixtures/utilities for the robustness (chaos) suite.

Everything runs at toy scale; ``REPRO_CHAOS_FAST=1`` (the CI setting)
shrinks the randomized-seed sweeps further without changing coverage of
the deterministic tests.
"""

import math
import os

import numpy as np

from repro.core import OmniMatchConfig, OmniMatchTrainer

CHAOS_FAST = bool(os.environ.get("REPRO_CHAOS_FAST"))

#: Seeds for the randomized chaos sweeps (reduced scale under CI).
CHAOS_SEEDS = range(2) if CHAOS_FAST else range(4)

WORLD_PARAMS = dict(
    num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0, seed=11
)


def tiny_config(**overrides) -> OmniMatchConfig:
    """Toy-scale config with dropout > 0 so the RNG stream is exercised."""
    base = dict(
        embed_dim=12, num_filters=3, kernel_sizes=(2, 3), invariant_dim=8,
        specific_dim=8, projection_dim=6, doc_len=16, dropout=0.2,
        vocab_size=200, epochs=4, batch_size=32, early_stopping=False, seed=7,
    )
    base.update(overrides)
    return OmniMatchConfig(**base)


def train_uninterrupted(world, config, epochs, **fit_kwargs):
    """Fresh trainer, one uninterrupted fit — the equivalence baseline."""
    dataset, split = world
    trainer = OmniMatchTrainer(dataset, split, config)
    return trainer.fit(epochs, **fit_kwargs)


def batches_per_epoch(world, config) -> int:
    dataset, split = world
    return math.ceil(len(split.train_interactions(dataset)) / config.batch_size)


def assert_states_identical(state_a, state_b):
    """Bit-identical parameter dictionaries (exact array equality)."""
    assert state_a.keys() == state_b.keys()
    for name in state_a:
        assert np.array_equal(state_a[name], state_b[name]), (
            f"parameter {name} differs"
        )


def assert_histories_identical(history_a, history_b):
    """Exact float equality on every recorded loss; wall-clock is exempt."""
    assert len(history_a) == len(history_b)
    for stat_a, stat_b in zip(history_a, history_b):
        assert stat_a.epoch == stat_b.epoch
        assert stat_a.total == stat_b.total
        assert stat_a.rating == stat_b.rating
        assert stat_a.scl == stat_b.scl
        assert stat_a.domain == stat_b.domain
        assert stat_a.valid_rmse == stat_b.valid_rmse
