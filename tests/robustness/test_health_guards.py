"""Numerical-health guards: every injected NaN/Inf is detected, rolled
back, and either recovered (transient fault) or escalated to
:class:`TrainingDivergedError` with the budget exhausted (persistent
fault) — and every step of that lands in the structured health log."""

import numpy as np
import pytest

from repro.core import OmniMatchTrainer, TrainingDivergedError
from repro.faults import NonFiniteGradientInjector, NonFiniteLossInjector

from .helpers import tiny_config, train_uninterrupted

EPOCHS = 4


def kinds(result):
    return [event.kind for event in result.health]


class TestTransientFaultRecovery:
    def test_nan_gradient_recovered(self, world):
        config = tiny_config()
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteGradientInjector(epoch=2, batch=0),
        )
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]
        assert kinds(result) == [
            "nonfinite_grad", "rollback", "lr_backoff", "kernel_fallback"
        ]
        assert all(np.isfinite(s.total) for s in result.history)

    def test_inf_loss_recovered_with_value_logged(self, world):
        config = tiny_config()
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteLossInjector(
                epoch=3, batch=0, value=float("inf")
            ),
        )
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]
        detection = result.health[0]
        assert detection.kind == "nonfinite_loss"
        assert detection.epoch == 3 and detection.batch == 0
        assert detection.value == float("inf")

    def test_lr_backoff_applied_after_rollback(self, world):
        # The snapshot restore must not undo the backoff: the recorded lr
        # is the *post*-restore, post-backoff value.
        config = tiny_config(lr_backoff_factor=0.25)
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteGradientInjector(epoch=1, batch=0),
        )
        backoff = next(e for e in result.health if e.kind == "lr_backoff")
        assert backoff.value == pytest.approx(config.learning_rate * 0.25)

    def test_no_kernel_fallback_when_disabled(self, world):
        config = tiny_config(divergence_kernel_fallback=False)
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteGradientInjector(epoch=2, batch=0),
        )
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]
        assert "kernel_fallback" not in kinds(result)

    def test_no_kernel_fallback_on_legacy_path(self, world):
        # The legacy path already runs the reference kernels — there is
        # nothing to fall back to.
        config = tiny_config(legacy_path=True)
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteGradientInjector(epoch=2, batch=0),
        )
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]
        assert "rollback" in kinds(result)
        assert "kernel_fallback" not in kinds(result)

    def test_nonfinite_grad_in_later_parameter(self, world):
        config = tiny_config()
        result = train_uninterrupted(
            world, config, EPOCHS,
            fault_injector=NonFiniteGradientInjector(
                epoch=2, batch=1, param_index=3, value=float("-inf")
            ),
        )
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]
        assert "nonfinite_grad" in kinds(result)


class TestPersistentFaultEscalation:
    def test_budget_exhaustion_raises(self, world):
        config = tiny_config(max_divergence_retries=2)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(TrainingDivergedError, match="retry budget of 2"):
            trainer.fit(
                EPOCHS,
                fault_injector=NonFiniteLossInjector(
                    epoch=1, batch=0, repeat=True
                ),
            )

    def test_rollback_count_matches_budget(self, world):
        config = tiny_config(max_divergence_retries=3)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        injector = NonFiniteGradientInjector(epoch=1, batch=0, repeat=True)
        with pytest.raises(TrainingDivergedError):
            trainer.fit(EPOCHS, fault_injector=injector)
        # budget retries, plus the final detection that exhausted it
        assert injector.fired == config.max_divergence_retries + 1

    def test_zero_budget_fails_on_first_divergence(self, world):
        config = tiny_config(max_divergence_retries=0)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(TrainingDivergedError, match="retry budget of 0"):
            trainer.fit(
                EPOCHS,
                fault_injector=NonFiniteGradientInjector(epoch=1, batch=0),
            )

    def test_model_restored_to_last_good_state_on_escalation(self, world):
        # After the error, the model must hold the snapshot taken at the
        # start of the poisoned epoch — not NaN-laced parameters.
        config = tiny_config(max_divergence_retries=1)
        dataset, split = world
        trainer = OmniMatchTrainer(dataset, split, config)
        with pytest.raises(TrainingDivergedError):
            trainer.fit(
                EPOCHS,
                fault_injector=NonFiniteLossInjector(
                    epoch=2, batch=0, repeat=True
                ),
            )
        for name, value in trainer.model.state_dict().items():
            assert np.isfinite(value).all(), f"parameter {name} not finite"
