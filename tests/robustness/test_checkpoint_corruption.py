"""Every corrupted checkpoint must be *rejected with a diagnostic* — never
loaded silently. Covers bit-flips, truncation, deleted files, manifest
tampering, interrupted writes, and format-version drift."""

import json
import shutil

import pytest

from repro.core import (
    CheckpointCorruptionError,
    CheckpointError,
    OmniMatchTrainer,
    find_latest_checkpoint,
    read_training_checkpoint,
    verify_checkpoint,
)
from repro.faults import delete_manifest_entry, flip_random_bit, truncate_file

from .helpers import tiny_config

PAYLOADS = ["config.json", "weights.npz", "optimizer.npz", "trainer_state.json"]


@pytest.fixture(scope="module")
def pristine_run(world, tmp_path_factory):
    """A 3-epoch checkpointed run kept immaculate; tests corrupt copies."""
    run_dir = tmp_path_factory.mktemp("pristine")
    dataset, split = world
    trainer = OmniMatchTrainer(dataset, split, tiny_config())
    trainer.fit(3, checkpoint_every=1, checkpoint_dir=run_dir, keep_last=3)
    return run_dir


@pytest.fixture()
def run_copy(pristine_run, tmp_path):
    target = tmp_path / "run"
    shutil.copytree(pristine_run, target)
    return target


def latest(run_dir):
    found = find_latest_checkpoint(run_dir)
    assert found is not None
    return found


class TestCorruptionDetected:
    @pytest.mark.parametrize("filename", PAYLOADS)
    def test_bit_flip_rejected(self, run_copy, filename):
        checkpoint = latest(run_copy)
        flip_random_bit(checkpoint / filename, seed=5)
        with pytest.raises(CheckpointCorruptionError, match=filename):
            read_training_checkpoint(checkpoint)

    @pytest.mark.parametrize("filename", ["weights.npz", "trainer_state.json"])
    def test_truncation_rejected(self, run_copy, filename):
        checkpoint = latest(run_copy)
        truncate_file(checkpoint / filename, keep_fraction=0.5)
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            read_training_checkpoint(checkpoint)

    def test_deleted_payload_rejected(self, run_copy):
        checkpoint = latest(run_copy)
        (checkpoint / "optimizer.npz").unlink()
        with pytest.raises(CheckpointCorruptionError, match="missing on disk"):
            read_training_checkpoint(checkpoint)

    def test_deleted_manifest_entry_rejected(self, run_copy):
        checkpoint = latest(run_copy)
        delete_manifest_entry(checkpoint, "weights.npz")
        with pytest.raises(CheckpointCorruptionError, match="weights.npz"):
            read_training_checkpoint(checkpoint)

    def test_missing_manifest_is_not_a_checkpoint(self, run_copy):
        checkpoint = latest(run_copy)
        (checkpoint / "MANIFEST.json").unlink()
        with pytest.raises(CheckpointError, match="MANIFEST.json"):
            read_training_checkpoint(checkpoint)

    def test_unsupported_format_version_rejected(self, run_copy):
        checkpoint = latest(run_copy)
        manifest_path = checkpoint / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            read_training_checkpoint(checkpoint)

    def test_config_drift_reported_by_name(self, run_copy):
        # A checkpoint from a hypothetical future version: the config holds
        # a field this build doesn't know, and its manifest is consistent
        # (digest re-signed), so the *drift* check must catch it by name.
        import hashlib

        checkpoint = latest(run_copy)
        config_path = checkpoint / "config.json"
        raw = json.loads(config_path.read_text())
        raw["mystery_knob"] = 1
        blob = json.dumps(raw).encode()
        config_path.write_bytes(blob)
        manifest_path = checkpoint / "MANIFEST.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["files"]["config.json"] = {
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
        }
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="mystery_knob"):
            read_training_checkpoint(checkpoint)

    def test_resume_from_corrupt_checkpoint_refuses_to_train(
        self, world, run_copy
    ):
        checkpoint = latest(run_copy)
        flip_random_bit(checkpoint / "weights.npz", seed=9)
        dataset, split = world
        fresh = OmniMatchTrainer(dataset, split, tiny_config())
        with pytest.raises(CheckpointError):
            fresh.fit(4, resume_from=checkpoint)


class TestRecoveryScanning:
    def test_find_latest_skips_corrupt_newest(self, run_copy):
        newest = latest(run_copy)
        assert newest.name == "epoch-0003"
        flip_random_bit(newest / "weights.npz", seed=2)
        fallback = find_latest_checkpoint(run_copy)
        assert fallback is not None and fallback.name == "epoch-0002"

    def test_find_latest_skips_interrupted_write(self, run_copy):
        # A write killed before the manifest landed leaves no MANIFEST.json.
        newest = latest(run_copy)
        (newest / "MANIFEST.json").unlink()
        fallback = find_latest_checkpoint(run_copy)
        assert fallback is not None and fallback.name == "epoch-0002"

    def test_resume_uses_previous_checkpoint_after_corruption(
        self, world, run_copy
    ):
        newest = latest(run_copy)
        truncate_file(newest / "trainer_state.json")
        dataset, split = world
        fresh = OmniMatchTrainer(dataset, split, tiny_config())
        result = fresh.fit(4, resume_from=run_copy)
        assert [s.epoch for s in result.history] == [1, 2, 3, 4]

    def test_verify_passes_on_clean_checkpoint(self, run_copy):
        manifest = verify_checkpoint(latest(run_copy))
        assert manifest["epoch"] == 3

    def test_config_mismatch_on_resume_names_fields(self, world, run_copy):
        dataset, split = world
        other = OmniMatchTrainer(
            dataset, split, tiny_config(aux_mix_prob=0.25, seed=8)
        )
        with pytest.raises(CheckpointError, match="aux_mix_prob"):
            other.fit(4, resume_from=run_copy)
