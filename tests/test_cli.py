"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "amazon"
        assert args.source == "books"
        assert args.target == "movies"
        assert args.trials == 1

    def test_invalid_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--source", "gardening"])

    def test_train_checkpoint_flag(self):
        args = build_parser().parse_args(["train", "--checkpoint", "/tmp/x"])
        assert args.checkpoint == "/tmp/x"

    def test_train_fault_tolerance_flags(self):
        args = build_parser().parse_args([
            "train", "--checkpoint", "/tmp/x", "--checkpoint-every", "2",
            "--keep-last", "5", "--resume", "/tmp/x/epoch-0004",
        ])
        assert args.checkpoint_every == 2
        assert args.keep_last == 5
        assert args.resume == "/tmp/x/epoch-0004"

    def test_train_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.checkpoint_every == 0
        assert args.keep_last == 3
        assert args.resume is None

    def test_checkpoint_every_requires_checkpoint_dir(self):
        from repro.cli import _cmd_train

        args = build_parser().parse_args(["train", "--checkpoint-every", "2"])
        with pytest.raises(SystemExit, match="requires --checkpoint"):
            _cmd_train(args)

    def test_train_telemetry_flag(self):
        args = build_parser().parse_args(["train", "--telemetry", "/tmp/obs"])
        assert args.telemetry == "/tmp/obs"
        assert build_parser().parse_args(["train"]).telemetry is None

    def test_compare_workers_flag(self):
        args = build_parser().parse_args(["compare", "--workers", "2"])
        assert args.workers == 2
        assert build_parser().parse_args(["compare"]).workers == 0

    def test_experiment_parses(self):
        args = build_parser().parse_args([
            "experiment", "--method", "CMF", "--trials", "2",
            "--train-fraction", "0.5", "--workers", "2", "--telemetry", "/tmp/t",
        ])
        assert args.method == "CMF"
        assert args.trials == 2
        assert args.train_fraction == 0.5
        assert args.workers == 2
        assert args.telemetry == "/tmp/t"

    def test_experiment_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--method", "SVD++"])

    def test_recommend_parses(self):
        args = build_parser().parse_args([
            "recommend", "--user", "U0007", "--k", "5",
            "--epochs", "2", "--telemetry", "/tmp/serve",
        ])
        assert args.command == "recommend"
        assert args.user == "U0007"
        assert args.k == 5
        assert args.epochs == 2
        assert args.telemetry == "/tmp/serve"

    def test_recommend_defaults(self):
        args = build_parser().parse_args(["recommend"])
        assert args.user is None
        assert args.k == 10
        assert args.epochs == 8
        assert args.telemetry is None
        assert args.retrieval == "exact"
        assert args.nlist is None and args.nprobe is None
        assert args.ann_store == "float32"
        assert args.exclude_seen is False

    def test_recommend_parses_retrieval_flags(self):
        args = build_parser().parse_args([
            "recommend", "--retrieval", "ivf", "--nlist", "64",
            "--nprobe", "4", "--ann-store", "int8", "--exclude-seen",
        ])
        assert args.retrieval == "ivf"
        assert args.nlist == 64
        assert args.nprobe == 4
        assert args.ann_store == "int8"
        assert args.exclude_seen is True

    def test_recommend_rejects_unknown_retrieval(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["recommend", "--retrieval", "annoy"])

    def test_bench_parses(self):
        args = build_parser().parse_args([
            "bench", "--methods", "item-mean,CMF",
            "--scenarios", "books:movies,music:books", "--workers", "4",
        ])
        assert args.methods == "item-mean,CMF"
        assert args.scenarios == "books:movies,music:books"
        assert args.workers == 4

    def test_report_parses(self):
        args = build_parser().parse_args(["report", "/tmp/run.jsonl"])
        assert args.command == "report"
        assert args.path == "/tmp/run.jsonl"
        assert args.validate is False
        assert build_parser().parse_args(
            ["report", "x", "--validate"]
        ).validate is True


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "OmniMatch" in out
        assert "amazon" in out

    def test_generate_prints_card(self, capsys):
        assert main(["generate", "--source", "books", "--target", "movies"]) == 0
        out = capsys.readouterr().out
        assert "overlap_users" in out
        assert "books -> movies" in out

    def test_case_study_prints_trace(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "cold-start user" in out
        assert "borrowed" in out or "no like-minded" in out

    def test_report_renders_run_file(self, tmp_path, capsys):
        from repro.obs import TelemetrySink

        with TelemetrySink(tmp_path, run_id="cli-test") as sink:
            sink.emit("run_start", seed=0, epochs=1, train_interactions=10)
            sink.emit("epoch", epoch=1, seconds=0.1, samples=10,
                      samples_per_sec=100.0, total=1.0)
            sink.emit("run_end", status="completed", epochs_trained=1)
        assert main(["report", str(tmp_path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schema OK" in out
        assert "cli-test" in out
        assert "completed" in out

    def test_report_missing_file_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["report", str(tmp_path / "nope.jsonl")])

    def test_experiment_runs_parallel_trials(self, tmp_path, capsys):
        telemetry = tmp_path / "obs"
        assert main([
            "experiment", "--method", "item-mean", "--trials", "2",
            "--workers", "2", "--telemetry", str(telemetry),
        ]) == 0
        out = capsys.readouterr().out
        assert "method=item-mean" in out
        assert "RMSE=" in out and "wall_s=" in out
        assert (telemetry / "run.jsonl").exists()

    def test_recommend_ranks_catalog(self, tmp_path, capsys):
        telemetry = tmp_path / "serve-obs"
        assert main([
            "recommend", "--epochs", "1", "--k", "3",
            "--telemetry", str(telemetry),
        ]) == 0
        out = capsys.readouterr().out
        assert "top-3 of" in out
        assert "expected rating" in out
        assert "cache:" in out
        assert (telemetry / "run.jsonl").exists()

    def test_recommend_ivf_with_exclusion(self, tmp_path, capsys):
        telemetry = tmp_path / "ann-obs"
        assert main([
            "recommend", "--epochs", "1", "--k", "3",
            "--retrieval", "ivf", "--nlist", "8", "--nprobe", "8",
            "--exclude-seen", "--telemetry", str(telemetry),
        ]) == 0
        out = capsys.readouterr().out
        assert "ivf retrieval" in out
        assert "ivf: nlist=8" in out
        from repro.obs.schema import validate_run_file

        census = validate_run_file(telemetry / "run.jsonl")
        assert census["kinds"].get("serve_ann_build") == 1
        assert census["kinds"].get("serve_ann_probe", 0) >= 1

    def test_bench_prints_table(self, capsys):
        assert main([
            "bench", "--methods", "item-mean,global-mean",
            "--scenarios", "books:movies", "--trials", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "item-mean" in out and "global-mean" in out
        assert "wall_s" in out

    def test_bench_rejects_bad_scenario(self):
        with pytest.raises(SystemExit, match="source:target"):
            main(["bench", "--scenarios", "books-movies"])

    def test_bench_rejects_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["bench", "--methods", "item-mean,SVD++"])

    def test_report_validates_unmerged_shard_directory(self, tmp_path, capsys):
        from repro.obs import TelemetrySink

        with TelemetrySink(tmp_path, filename="run-w0g0.jsonl",
                           run_id="w0g0") as sink:
            sink.emit("worker_start", worker=0, generation=0)
            sink.emit("worker_end", worker=0, busy_seconds=1.0,
                      idle_seconds=1.0, tasks_done=1)
        assert main(["report", str(tmp_path), "--validate"]) == 0
        out = capsys.readouterr().out
        assert "schema OK (run-w0g0.jsonl)" in out
        assert "worker utilization" in out
