"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.dataset == "amazon"
        assert args.source == "books"
        assert args.target == "movies"
        assert args.trials == 1

    def test_invalid_domain_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--source", "gardening"])

    def test_train_checkpoint_flag(self):
        args = build_parser().parse_args(["train", "--checkpoint", "/tmp/x"])
        assert args.checkpoint == "/tmp/x"

    def test_train_fault_tolerance_flags(self):
        args = build_parser().parse_args([
            "train", "--checkpoint", "/tmp/x", "--checkpoint-every", "2",
            "--keep-last", "5", "--resume", "/tmp/x/epoch-0004",
        ])
        assert args.checkpoint_every == 2
        assert args.keep_last == 5
        assert args.resume == "/tmp/x/epoch-0004"

    def test_train_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.checkpoint_every == 0
        assert args.keep_last == 3
        assert args.resume is None

    def test_checkpoint_every_requires_checkpoint_dir(self):
        from repro.cli import _cmd_train

        args = build_parser().parse_args(["train", "--checkpoint-every", "2"])
        with pytest.raises(SystemExit, match="requires --checkpoint"):
            _cmd_train(args)


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "OmniMatch" in out
        assert "amazon" in out

    def test_generate_prints_card(self, capsys):
        assert main(["generate", "--source", "books", "--target", "movies"]) == 0
        out = capsys.readouterr().out
        assert "overlap_users" in out
        assert "books -> movies" in out

    def test_case_study_prints_trace(self, capsys):
        assert main(["case-study"]) == 0
        out = capsys.readouterr().out
        assert "cold-start user" in out
        assert "borrowed" in out or "no like-minded" in out
