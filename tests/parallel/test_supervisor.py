"""Tests for the long-lived worker supervisor (slot/generation lifecycle)."""

import multiprocessing
import os
import queue
import time

import pytest

from repro.parallel import WorkerDeath, WorkerSupervisor


def echo_worker(slot, generation, task_queue, result_queue):
    """Doubles integers; 'die' exits like a SIGKILL; None stops."""
    while True:
        message = task_queue.get()
        if message is None:
            return
        if message == "die":
            result_queue.close()
            result_queue.join_thread()
            os._exit(9)
        result_queue.put((slot, generation, message * 2))


@pytest.fixture()
def result_queue():
    return multiprocessing.get_context("fork").Queue()


def make_supervisor(result_queue, workers=2):
    return WorkerSupervisor(
        echo_worker,
        lambda slot, generation, task_queue: (
            slot, generation, task_queue, result_queue
        ),
        workers,
    )


def collect(result_queue, count, timeout=20.0):
    results = []
    deadline = time.monotonic() + timeout
    while len(results) < count and time.monotonic() < deadline:
        try:
            results.append(result_queue.get(timeout=0.2))
        except queue.Empty:
            continue
    return results


class TestSupervisor:
    def test_round_trip_through_every_slot(self, result_queue):
        supervisor = make_supervisor(result_queue)
        supervisor.start()
        try:
            supervisor.send(0, 10)
            supervisor.send(1, 20)
            results = collect(result_queue, 2)
            assert sorted(results) == [(0, 0, 20), (1, 0, 40)]
            assert supervisor.alive_count() == 2
        finally:
            supervisor.stop()

    def test_death_is_detected_and_respawned_with_next_generation(
        self, result_queue
    ):
        supervisor = make_supervisor(result_queue)
        supervisor.start()
        try:
            supervisor.send(0, "die")
            deaths = []
            deadline = time.monotonic() + 20
            while not deaths and time.monotonic() < deadline:
                deaths = supervisor.check()
                time.sleep(0.02)
            assert deaths == [WorkerDeath(slot=0, generation=0, exitcode=9)]
            assert supervisor.generation(0) == 1
            assert supervisor.generation(1) == 0
            # The respawned generation serves from a fresh queue.
            supervisor.send(0, 7)
            assert collect(result_queue, 1) == [(0, 1, 14)]
        finally:
            supervisor.stop()

    def test_kill_heals_like_any_death(self, result_queue):
        supervisor = make_supervisor(result_queue, workers=1)
        supervisor.start()
        try:
            supervisor.send(0, 1)
            assert collect(result_queue, 1) == [(0, 0, 2)]
            # Let the worker's feeder thread release the shared result-queue
            # write lock before killing: a SIGKILL in the microseconds between
            # our get() and that release would leave the lock held forever and
            # wedge the respawned generation's put(). (The daemon only ever
            # SIGKILLs compute-stalled workers, which never hold it.)
            time.sleep(0.2)
            supervisor.kill(0)
            deaths = []
            deadline = time.monotonic() + 20
            while not deaths and time.monotonic() < deadline:
                deaths = supervisor.check()
                time.sleep(0.02)
            assert deaths[0].slot == 0
            assert deaths[0].exitcode != 0
            supervisor.send(0, 3)
            assert collect(result_queue, 1) == [(0, 1, 6)]
        finally:
            supervisor.stop()

    def test_check_without_respawn_retires_the_slot(self, result_queue):
        supervisor = make_supervisor(result_queue)
        supervisor.start()
        try:
            supervisor.send(1, "die")
            deaths = []
            deadline = time.monotonic() + 20
            while not deaths and time.monotonic() < deadline:
                deaths = supervisor.check(respawn=False)
                time.sleep(0.02)
            assert deaths[0].slot == 1
            assert supervisor.alive_count() == 1
        finally:
            supervisor.stop()

    def test_stop_is_graceful_and_idempotent(self, result_queue):
        supervisor = make_supervisor(result_queue)
        supervisor.start()
        supervisor.stop()
        assert supervisor.alive_count() == 0
        supervisor.stop()  # second call must not raise
        assert supervisor.check() == []  # post-stop checks are inert

    def test_rejects_zero_workers(self, result_queue):
        with pytest.raises(ValueError):
            make_supervisor(result_queue, workers=0)
