"""Tests for the shared-memory pack layer (publish / attach / lifecycle)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.parallel import (
    ShmPack,
    attach,
    live_segments,
    pack_strings,
    unpack_strings,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


class TestPackRoundtrip:
    def test_arrays_roundtrip_bitwise(self):
        arrays = {
            "ints": np.arange(101, dtype=np.int32).reshape(-1),
            "matrix": np.random.default_rng(0).normal(size=(7, 13)),
            "flags": np.array([True, False, True]),
        }
        pack = ShmPack.publish(arrays, prefix="repro-test")
        try:
            attached = attach(pack.ref)
            for name, array in arrays.items():
                np.testing.assert_array_equal(attached[name], array)
                assert attached[name].dtype == array.dtype
            attached.close()
        finally:
            pack.unlink()

    def test_views_are_read_only(self):
        pack = ShmPack.publish({"x": np.zeros(4)}, prefix="repro-test")
        try:
            attached = attach(pack.ref)
            with pytest.raises(ValueError):
                attached["x"][0] = 1.0
            attached.close()
        finally:
            pack.unlink()

    def test_ref_is_picklable_and_sized(self):
        import pickle

        arrays = {"a": np.zeros((3, 5), dtype=np.float64), "b": np.zeros(2, np.int64)}
        pack = ShmPack.publish(arrays, prefix="repro-test")
        try:
            ref = pickle.loads(pickle.dumps(pack.ref))
            assert ref.name == pack.ref.name
            assert ref.nbytes() == 3 * 5 * 8 + 2 * 8
        finally:
            pack.unlink()

    def test_empty_strings_column(self):
        buffer, offsets = pack_strings(["", "ab", ""])
        assert unpack_strings(buffer, offsets) == ["", "ab", ""]

    def test_strings_roundtrip_unicode(self):
        values = ["plain", "accénted", "汉字", ""]
        buffer, offsets = pack_strings(values)
        assert unpack_strings(buffer, offsets) == values


class TestLifecycle:
    def test_unlink_is_idempotent_and_updates_registry(self):
        pack = ShmPack.publish({"x": np.zeros(8)}, prefix="repro-test")
        assert pack.ref.name in live_segments()
        pack.unlink()
        assert pack.ref.name not in live_segments()
        pack.unlink()  # second call must not raise

    def test_attach_after_unlink_fails(self):
        pack = ShmPack.publish({"x": np.zeros(8)}, prefix="repro-test")
        ref = pack.ref
        pack.unlink()
        with pytest.raises(FileNotFoundError):
            attach(ref)

    def test_atexit_reclaims_segments_on_abnormal_exit(self):
        """A process that dies with an uncaught exception leaks nothing."""
        script = (
            "import numpy as np\n"
            "from repro.parallel import ShmPack\n"
            "pack = ShmPack.publish({'x': np.zeros(64)}, prefix='repro-leak')\n"
            "print(pack.ref.name, flush=True)\n"
            "raise RuntimeError('abnormal exit without unlink')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, env={**os.environ, "PYTHONPATH": SRC},
        )
        assert proc.returncode != 0
        name = proc.stdout.strip()
        assert name.startswith("repro-leak")
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
