"""Engine tests: serial/parallel bit-identity, crash supervision, cleanup."""

import pytest

from repro.core import OmniMatchConfig
from repro.eval import METHODS, run_experiment
from repro.eval.protocol import run_table
from repro.faults import WorkerKillPlan
from repro.parallel import (
    ExperimentTask,
    ParallelExecutionError,
    live_segments,
    run_tasks,
)

SMALL = dict(num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0)
TINY_CONFIG = OmniMatchConfig(epochs=2, patience=1)


def small_task(index, method="item-mean", **kwargs):
    defaults = dict(
        index=index, method=method, dataset_name="amazon", source="books",
        target="movies", trials=1, trial_offset=0, seed=0, train_fraction=1.0,
        config=None, generator_overrides=tuple(sorted(SMALL.items())),
        emit_summary=True,
    )
    defaults.update(kwargs)
    return ExperimentTask(**defaults)


class TestBitIdentity:
    @pytest.mark.parametrize("method", sorted(METHODS))
    def test_parallel_matches_serial_for_every_method(self, method):
        config = TINY_CONFIG if method == "OmniMatch" else None
        serial = run_experiment(
            method, "amazon", "books", "movies", trials=2, seed=0,
            config=config, **SMALL,
        )
        parallel = run_experiment(
            method, "amazon", "books", "movies", trials=2, seed=0,
            config=config, workers=2, **SMALL,
        )
        assert parallel.rmse_per_trial == serial.rmse_per_trial
        assert parallel.mae_per_trial == serial.mae_per_trial
        assert parallel.rmse == serial.rmse
        assert parallel.mae == serial.mae
        assert parallel.rmse_std == serial.rmse_std

    def test_inline_engine_matches_serial(self):
        serial = run_experiment(
            "OmniMatch", "amazon", "books", "movies", trials=2, seed=0,
            config=TINY_CONFIG, **SMALL,
        )
        inline = run_table(
            ["OmniMatch"], "amazon", scenarios=[("books", "movies")],
            trials=2, seed=0, config=TINY_CONFIG, workers=0, **SMALL,
        )[0]
        assert inline.rmse_per_trial == serial.rmse_per_trial
        assert inline.mae_per_trial == serial.mae_per_trial

    def test_table_cells_ordered_and_identical(self):
        methods = ["item-mean", "global-mean"]
        scenarios = [("books", "movies"), ("movies", "books")]
        inline = run_table(
            methods, "amazon", scenarios=scenarios, trials=1, seed=0,
            workers=0, **SMALL,
        )
        parallel = run_table(
            methods, "amazon", scenarios=scenarios, trials=1, seed=0,
            workers=2, **SMALL,
        )
        assert [(r.method, r.scenario) for r in inline] == [
            (method, f"{source} -> {target}")
            for source, target in scenarios for method in methods
        ]
        assert [(r.rmse, r.mae) for r in parallel] == [
            (r.rmse, r.mae) for r in inline
        ]


class TestSupervision:
    def test_worker_death_requeues_deterministically(self, tmp_path):
        tasks = [small_task(i) for i in range(4)]
        clean = run_tasks(tasks, workers=2)
        chaotic = run_tasks(
            tasks, workers=2, telemetry_dir=tmp_path,
            kill_plan=WorkerKillPlan([(1, 0), (2, 0)]),
        )
        assert [(r.rmse, r.mae) for r in chaotic] == [
            (r.rmse, r.mae) for r in clean
        ]
        # Replacement workers write generation-suffixed shards.
        shards = sorted(p.name for p in tmp_path.glob("run-*.jsonl"))
        assert any("g1" in name for name in shards)

    def test_retries_exhausted_raises(self):
        plan = WorkerKillPlan([(0, 0), (0, 1)])
        with pytest.raises(ParallelExecutionError, match="giving up"):
            run_tasks([small_task(0)], workers=2, max_task_retries=1, kill_plan=plan)

    def test_task_exception_propagates_without_retry(self):
        with pytest.raises(ParallelExecutionError, match="not retried"):
            run_tasks([small_task(0, method="no-such-method")], workers=2)

    def test_duplicate_task_indexes_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_tasks([small_task(0), small_task(0)], workers=0)


class TestCleanup:
    def test_no_leaked_segments_after_success(self):
        run_tasks([small_task(0)], workers=2)
        assert live_segments() == frozenset()

    def test_no_leaked_segments_after_failure(self):
        with pytest.raises(ParallelExecutionError):
            run_tasks([small_task(0, method="no-such-method")], workers=2)
        assert live_segments() == frozenset()

    def test_no_leaked_segments_after_worker_deaths(self):
        plan = WorkerKillPlan([(0, 0), (0, 1)])
        with pytest.raises(ParallelExecutionError):
            run_tasks([small_task(0)], workers=2, max_task_retries=1, kill_plan=plan)
        assert live_segments() == frozenset()
