"""Tests for shared-memory dataset / document-store encodings."""

import numpy as np
import pytest

from repro.core import OmniMatchConfig, OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.data.batching import DocumentStore
from repro.parallel import (
    attach_dataset,
    attach_document_store,
    publish_dataset,
    publish_document_matrices,
)

SMALL = dict(num_users=60, num_items_per_domain=30, reviews_per_user_mean=4.0)


@pytest.fixture(scope="module")
def dataset():
    return generate_domain_pair("books", "movies", GeneratorConfig(**SMALL, seed=3))


class TestDatasetSharing:
    def test_roundtrip_preserves_reviews_exactly(self, dataset):
        pack, ref = publish_dataset(dataset)
        try:
            rebuilt = attach_dataset(ref)
        finally:
            pack.unlink()
        assert rebuilt.source.name == dataset.source.name
        assert rebuilt.target.name == dataset.target.name
        assert rebuilt.metadata == dataset.metadata
        for side in ("source", "target"):
            original = getattr(dataset, side).reviews
            copy = getattr(rebuilt, side).reviews
            assert len(copy) == len(original)
            # Order AND content must match exactly: derived indexes and
            # seeded RNG draws over the review lists depend on both.
            for a, b in zip(original, copy):
                assert a == b

    def test_rebuilt_dataset_outlives_the_segment(self, dataset):
        pack, ref = publish_dataset(dataset)
        rebuilt = attach_dataset(ref)
        pack.unlink()  # reviews are plain objects, not views
        assert rebuilt.source.reviews[0] == dataset.source.reviews[0]

    def test_same_split_from_rebuilt_dataset(self, dataset):
        pack, ref = publish_dataset(dataset)
        try:
            rebuilt = attach_dataset(ref)
        finally:
            pack.unlink()
        ours = cold_start_split(dataset, seed=7)
        theirs = cold_start_split(rebuilt, seed=7)
        assert ours.cold_users == theirs.cold_users
        assert ours.train_users == theirs.train_users


class TestStoreSharing:
    def test_attached_store_matches_local_build(self, dataset):
        split = cold_start_split(dataset, seed=0)
        local = DocumentStore(dataset, split, doc_len=32, vocab_size=500)
        pack, ref = publish_document_matrices(local)
        try:
            remote = attach_document_store(ref, dataset, split)
            ours = local.build_matrices()
            theirs = remote.build_matrices()
            assert ours.user_slots == theirs.user_slots
            assert ours.item_slots == theirs.item_slots
            np.testing.assert_array_equal(ours.source, theirs.source)
            np.testing.assert_array_equal(ours.target, theirs.target)
            np.testing.assert_array_equal(ours.target_valid, theirs.target_valid)
            np.testing.assert_array_equal(ours.items, theirs.items)
            assert local.vocab.tokens == remote.vocab.tokens
            # On-demand encodings must agree too (vocabulary identity).
            user = next(iter(ours.user_slots))
            np.testing.assert_array_equal(
                local.user_source_doc(user), remote.user_source_doc(user)
            )
            remote.attached_pack.close()
        finally:
            pack.unlink()

    def test_trainer_accepts_matching_prebuilt_store(self, dataset):
        split = cold_start_split(dataset, seed=0)
        config = OmniMatchConfig(epochs=1, patience=1, seed=0)
        store = DocumentStore(
            dataset, split, doc_len=config.doc_len,
            vocab_size=config.vocab_size, field=config.field,
        )
        trainer = OmniMatchTrainer(dataset, split, config, store=store)
        assert trainer.store is store

    def test_trainer_rejects_mismatched_store(self, dataset):
        split = cold_start_split(dataset, seed=0)
        config = OmniMatchConfig(epochs=1, seed=0)
        store = DocumentStore(dataset, split, doc_len=16, vocab_size=100)
        with pytest.raises(ValueError, match="doc_len"):
            OmniMatchTrainer(dataset, split, config, store=store)
