"""A SIGTERM'd publisher must not leak /dev/shm segments (satellite).

The atexit sweep only covers normal interpreter exits; a daemon killed
with SIGTERM dies without running it. ``ShmPack.publish`` installs
SIGTERM/SIGINT handlers that run the sweep first and then restore the
signal's default behavior, so the process still reports a signal death.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.parallel import install_signal_cleanup

SRC = str(Path(__file__).resolve().parents[2] / "src")

PUBLISHER = """
import sys, time
import numpy as np
from repro.parallel import ShmPack
pack = ShmPack.publish({'x': np.zeros(256)}, prefix='repro-sigterm')
print(pack.ref.name, flush=True)
time.sleep(60)  # wait to be killed
"""


def run_publisher_and_signal(signum):
    proc = subprocess.Popen(
        [sys.executable, "-c", PUBLISHER],
        stdout=subprocess.PIPE, text=True,
        env={**os.environ, "PYTHONPATH": SRC},
    )
    try:
        name = proc.stdout.readline().strip()
        assert name.startswith("repro-sigterm")
        proc.send_signal(signum)
        returncode = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    return name, returncode


def assert_segment_gone(name):
    from multiprocessing import shared_memory

    deadline = time.monotonic() + 5
    while time.monotonic() < deadline:
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return
        segment.close()
        time.sleep(0.05)
    raise AssertionError(f"segment {name} leaked in /dev/shm")


class TestSignalCleanup:
    def test_sigterm_unlinks_segments_and_keeps_signal_exit_status(self):
        name, returncode = run_publisher_and_signal(signal.SIGTERM)
        assert_segment_gone(name)
        # The handler re-raises with SIG_DFL restored: the exit status must
        # still say "killed by SIGTERM", not a clean exit.
        assert returncode == -signal.SIGTERM

    def test_sigint_unlinks_segments_too(self):
        name, returncode = run_publisher_and_signal(signal.SIGINT)
        assert_segment_gone(name)
        assert returncode != 0

    def test_install_is_idempotent_in_main_thread(self):
        assert install_signal_cleanup() is True
        assert install_signal_cleanup() is True

    def test_install_refuses_non_main_thread(self):
        import threading

        import repro.parallel.shm as shm

        previous = dict(shm._SIGNAL_PREVIOUS)
        shm._SIGNAL_PREVIOUS.clear()
        try:
            outcome = []
            thread = threading.Thread(
                target=lambda: outcome.append(install_signal_cleanup())
            )
            thread.start()
            thread.join()
            assert outcome == [False]
        finally:
            shm._SIGNAL_PREVIOUS.update(previous)
            if previous:
                install_signal_cleanup()


@pytest.fixture(autouse=True)
def restore_handlers():
    """Keep the test process's own handlers stable across tests."""
    term = signal.getsignal(signal.SIGTERM)
    intr = signal.getsignal(signal.SIGINT)
    yield
    signal.signal(signal.SIGTERM, term)
    signal.signal(signal.SIGINT, intr)
