"""Tests for telemetry shard merging and parallel-run reporting."""

import json

import pytest

from repro.obs import (
    find_shards,
    load_run_events,
    merge_shards,
    merged_events,
    render_report,
    summarize_run,
    validate_run_file,
)


def write_shard(directory, name, events):
    lines = [json.dumps(event, sort_keys=True) for event in events]
    (directory / name).write_text("\n".join(lines) + "\n")


def worker_events(worker, ts0, tasks):
    run = f"w{worker}g0"
    events = [
        {"seq": 0, "ts": ts0, "run": run, "kind": "worker_start",
         "worker": worker, "generation": 0},
    ]
    for offset, task in enumerate(tasks):
        events.append(
            {"seq": 1 + offset, "ts": ts0 + 1.0 + offset, "run": run,
             "kind": "task", "task": task, "worker": worker,
             "method": "item-mean", "scenario": "books -> movies",
             "status": "ok", "seconds": 0.5}
        )
    events.append(
        {"seq": 1 + len(tasks), "ts": ts0 + 10.0, "run": run,
         "kind": "worker_end", "worker": worker, "busy_seconds": 6.0,
         "idle_seconds": 2.0, "tasks_done": len(tasks)}
    )
    return events


class TestMergeShards:
    def test_merge_produces_schema_valid_run(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0, 2]))
        write_shard(tmp_path, "run-w1g0.jsonl", worker_events(1, 100.5, [1]))
        output = merge_shards(tmp_path)
        assert output == tmp_path / "run.jsonl"
        stats = validate_run_file(output)
        assert stats["runs"] == 3  # two workers + the merge marker
        assert stats["kinds"]["merge"] == 1
        assert stats["kinds"]["task"] == 3

    def test_merge_orders_by_time_and_keeps_shard_order(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        write_shard(tmp_path, "run-w1g0.jsonl", worker_events(1, 100.5, [1]))
        merge_shards(tmp_path)
        events = load_run_events(tmp_path / "run.jsonl")
        timeline = [e["ts"] for e in events[:-1]]  # merge marker stamps now()
        assert timeline == sorted(timeline)
        for run in ("w0g0", "w1g0"):
            seqs = [e["seq"] for e in events if e.get("run") == run]
            assert seqs == sorted(seqs)

    def test_nonmonotone_worker_clock_tolerated(self, tmp_path):
        events = worker_events(0, 100.0, [0])
        events[1]["ts"] = 99.0  # clock stepped backwards mid-run
        write_shard(tmp_path, "run-w0g0.jsonl", events)
        write_shard(tmp_path, "run-w1g0.jsonl", worker_events(1, 100.5, [1]))
        merge_shards(tmp_path)
        validate_run_file(tmp_path / "run.jsonl")  # seq order survives

    def test_remerge_replaces_instead_of_appending(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        merge_shards(tmp_path)
        first = (tmp_path / "run.jsonl").read_text()
        merge_shards(tmp_path)
        assert (tmp_path / "run.jsonl").read_text().count('"merge"') == \
            first.count('"merge"')

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            merge_shards(tmp_path)

    def test_find_shards_excludes_merged_file(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        merge_shards(tmp_path)
        assert [p.name for p in find_shards(tmp_path)] == ["run-w0g0.jsonl"]


class TestTruncatedShards:
    """A worker killed mid-append leaves a torn final line; the merge must
    survive it, warn about it, and account for the loss in the merge event."""

    def test_torn_tail_is_dropped_with_warning_and_recorded(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        # Simulate the kill: the worker died halfway through an append.
        shard = tmp_path / "run-w1g0.jsonl"
        lines = [json.dumps(e, sort_keys=True) for e in worker_events(1, 100.5, [1])]
        shard.write_text("\n".join(lines) + '\n{"seq": 4, "ts": 110.2, "ru')
        with pytest.warns(UserWarning, match="torn final line"):
            merge_shards(tmp_path)
        stats = validate_run_file(tmp_path / "run.jsonl")
        assert stats["kinds"]["merge"] == 1
        merged = load_run_events(tmp_path / "run.jsonl")
        marker = [e for e in merged if e["kind"] == "merge"][0]
        assert marker["truncated_shards"] == ["run-w1g0.jsonl"]
        assert marker["dropped_lines"] == 1
        # Every intact event of the torn shard survives.
        assert sum(1 for e in merged if e.get("run") == "w1g0") == 3

    def test_intact_shards_report_no_truncation(self, tmp_path):
        import warnings

        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any warning fails the test
            merge_shards(tmp_path)
        marker = [
            e for e in load_run_events(tmp_path / "run.jsonl")
            if e["kind"] == "merge"
        ][0]
        assert marker["truncated_shards"] == []
        assert marker["dropped_lines"] == 0

    def test_mid_file_corruption_still_raises(self, tmp_path):
        shard = tmp_path / "run-w0g0.jsonl"
        lines = [json.dumps(e, sort_keys=True) for e in worker_events(0, 100.0, [0])]
        lines[1] = lines[1][: len(lines[1]) // 2]  # corrupt a non-final line
        shard.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed telemetry"):
            merge_shards(tmp_path)

    def test_report_shows_telemetry_loss(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        shard = tmp_path / "run-w1g0.jsonl"
        lines = [json.dumps(e, sort_keys=True) for e in worker_events(1, 100.5, [1])]
        shard.write_text("\n".join(lines) + '\n{"torn')
        with pytest.warns(UserWarning):
            merge_shards(tmp_path)
        text = render_report(load_run_events(tmp_path / "run.jsonl"))
        assert "torn line(s)" in text
        assert "run-w1g0.jsonl" in text


class TestParallelReport:
    def test_report_from_unmerged_shard_directory(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0, 2]))
        write_shard(tmp_path, "run-w1g0.jsonl", worker_events(1, 100.5, [1]))
        events = load_run_events(tmp_path)  # no run.jsonl present
        assert events == merged_events(tmp_path)
        summary = summarize_run(events)
        assert set(summary["workers"]) == {0, 1}
        assert summary["workers"][0]["tasks_done"] == 2
        assert summary["workers"][0]["utilization"] == pytest.approx(0.75)
        assert summary["tasks"]["ok"] == 3

    def test_render_report_shows_utilization(self, tmp_path):
        write_shard(tmp_path, "run-w0g0.jsonl", worker_events(0, 100.0, [0]))
        merge_shards(tmp_path)
        text = render_report(load_run_events(tmp_path))
        assert "worker utilization" in text
        assert "worker 0" in text
        assert "75.0%" in text
