"""End-to-end integration tests across the whole stack.

These use a compact world so the full pipeline (generate -> split -> train
OmniMatch -> predict cold users -> score) runs in seconds, and assert the
paper's central qualitative claim at small scale: the trained model extracts
usable cold-start signal (it beats the global-mean predictor), and the
auxiliary-review machinery feeds evaluation exactly as designed.
"""

import numpy as np
import pytest

from repro.core import ColdStartPredictor, OmniMatchConfig, OmniMatchTrainer
from repro.data import GeneratorConfig, cold_start_split, generate_domain_pair
from repro.eval import make_predictor, mae, rmse


@pytest.fixture(scope="module")
def world():
    dataset = generate_domain_pair(
        "books",
        "movies",
        GeneratorConfig(num_users=220, num_items_per_domain=90,
                        reviews_per_user_mean=7.0, seed=31),
    )
    split = cold_start_split(dataset, seed=0)
    return dataset, split


@pytest.fixture(scope="module")
def trained(world):
    dataset, split = world
    config = OmniMatchConfig(
        embed_dim=24, num_filters=8, invariant_dim=16, specific_dim=16,
        projection_dim=8, doc_len=48, epochs=10, patience=3, dropout=0.1,
        batch_size=64, seed=0,
    )
    return OmniMatchTrainer(dataset, split, config).fit()


class TestEndToEnd:
    def test_omnimatch_beats_global_mean_on_cold_users(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        test = split.eval_interactions(dataset, "test")
        actual = np.array([r.rating for r in test])
        ours = rmse(actual, predictor.predict_interactions(test))
        mean_fit = make_predictor("global-mean", dataset, split)
        baseline = rmse(actual, mean_fit.predict_interactions(test))
        assert ours < baseline

    def test_mae_also_beats_global_mean(self, world, trained):
        dataset, split = world
        predictor = ColdStartPredictor(trained)
        test = split.eval_interactions(dataset, "test")
        actual = np.array([r.rating for r in test])
        ours = mae(actual, predictor.predict_interactions(test))
        mean_fit = make_predictor("global-mean", dataset, split)
        assert ours < mae(actual, mean_fit.predict_interactions(test))

    def test_cold_users_truly_unseen(self, world, trained):
        """No cold user's target review may leak into any training artifact."""
        dataset, split = world
        cold = set(split.cold_users)
        # 1. training interactions exclude cold users
        for review in split.train_interactions(dataset):
            assert review.user_id not in cold
        # 2. the document store refuses cold target docs
        for user in list(cold)[:5]:
            with pytest.raises(KeyError):
                trained.store.user_target_doc(user)
        # 3. auxiliary generator only borrows from training users
        train_users = set(split.train_users)
        for user in list(cold)[:5]:
            for sel in trained.aux_generator.explain(user):
                if sel.succeeded:
                    assert sel.like_minded_user in train_users

    def test_ablation_losses_run_end_to_end(self, world):
        dataset, split = world
        for flags in (
            dict(use_scl=False),
            dict(use_domain_adversarial=False),
            dict(use_auxiliary_reviews=False),
        ):
            config = OmniMatchConfig(
                embed_dim=16, num_filters=4, invariant_dim=8, specific_dim=8,
                projection_dim=6, doc_len=24, epochs=1, early_stopping=False,
                **flags,
            )
            result = OmniMatchTrainer(dataset, split, config).fit()
            predictor = ColdStartPredictor(result)
            test = split.eval_interactions(dataset, "test")[:10]
            assert np.isfinite(predictor.predict_interactions(test)).all()

    def test_reproducible_pipeline(self, world):
        dataset, split = world
        config = OmniMatchConfig(
            embed_dim=16, num_filters=4, invariant_dim=8, specific_dim=8,
            projection_dim=6, doc_len=24, epochs=2, early_stopping=False, seed=9,
        )
        test = split.eval_interactions(dataset, "test")[:20]
        runs = []
        for _ in range(2):
            result = OmniMatchTrainer(dataset, split, config).fit()
            runs.append(ColdStartPredictor(result).predict_interactions(test))
        np.testing.assert_allclose(runs[0], runs[1])
