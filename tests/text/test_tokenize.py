"""Unit tests for tokenization and document construction."""

from repro.text import REVIEW_SEPARATOR, build_document, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Vampire Romance") == ["vampire", "romance"]

    def test_strips_punctuation(self):
        assert tokenize("Fang-tastic, Fun and Freaky!") == [
            "fang", "tastic", "fun", "and", "freaky",
        ]

    def test_preserves_separator_token(self):
        assert tokenize(f"good {REVIEW_SEPARATOR} bad") == ["good", REVIEW_SEPARATOR, "bad"]

    def test_collapses_whitespace(self):
        assert tokenize("a   b\t c\nd") == ["a", "b", "c", "d"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("!!! ... ???") == []

    def test_keeps_digits(self):
        assert tokenize("5 stars") == ["5", "stars"]


class TestBuildDocument:
    def test_joins_with_separator(self):
        doc = build_document(["great movie", "boring plot"])
        assert doc == ["great", "movie", REVIEW_SEPARATOR, "boring", "plot"]

    def test_single_review_has_no_separator(self):
        assert REVIEW_SEPARATOR not in build_document(["great movie"])

    def test_truncates_to_max_tokens(self):
        doc = build_document(["a b c", "d e f"], max_tokens=4)
        assert len(doc) == 4
        assert doc == ["a", "b", "c", REVIEW_SEPARATOR]

    def test_truncation_short_circuits(self):
        reviews = iter(["x y z", "should not matter"])
        assert len(build_document(reviews, max_tokens=2)) == 2

    def test_empty_reviews(self):
        assert build_document([]) == []

    def test_no_limit_keeps_everything(self):
        doc = build_document(["a"] * 50)
        assert len(doc) == 50 + 49  # tokens + separators
