"""Unit tests for the vocabulary."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import PAD_TOKEN, UNK_TOKEN, Vocabulary


def build(docs, **kwargs):
    return Vocabulary.build(docs, **kwargs)


class TestBuild:
    def test_pad_unk_first(self):
        v = build([["a", "b"]])
        assert v.token_at(0) == PAD_TOKEN
        assert v.token_at(1) == UNK_TOKEN

    def test_frequency_ordering(self):
        v = build([["b", "b", "a", "c", "c", "c"]])
        assert v.token_at(2) == "c"
        assert v.token_at(3) == "b"

    def test_alphabetical_tiebreak(self):
        v = build([["zed", "apple"]])
        assert v.token_at(2) == "apple"

    def test_max_size_caps(self):
        v = build([[f"w{i}" for i in range(100)]], max_size=10)
        assert len(v) == 10

    def test_min_count_filters(self):
        v = build([["rare", "common", "common"]], min_count=2)
        assert "rare" not in v
        assert "common" in v

    def test_specials_always_included(self):
        v = build([["a"] * 5], max_size=3, specials=["<sp>"])
        assert "<sp>" in v

    def test_duplicate_tokens_rejected(self):
        with pytest.raises(ValueError):
            Vocabulary([PAD_TOKEN, UNK_TOKEN, "a", "a"])

    def test_must_start_with_pad_unk(self):
        with pytest.raises(ValueError):
            Vocabulary(["a", "b"])


class TestEncodeDecode:
    def test_unknown_maps_to_unk(self):
        v = build([["known"]])
        assert v.index_of("unknown") == v.unk_index

    def test_encode_pads_to_length(self):
        v = build([["a", "b"]])
        ids = v.encode(["a"], length=4)
        assert ids.tolist() == [v.index_of("a"), 0, 0, 0]

    def test_encode_truncates(self):
        v = build([["a", "b", "c"]])
        assert len(v.encode(["a", "b", "c"], length=2)) == 2

    def test_encode_dtype(self):
        v = build([["a"]])
        assert v.encode(["a"]).dtype == np.int64

    def test_decode_skips_pad(self):
        v = build([["a"]])
        ids = v.encode(["a"], length=3)
        assert v.decode(ids) == ["a"]

    def test_decode_keeps_pad_when_asked(self):
        v = build([["a"]])
        ids = v.encode(["a"], length=2)
        assert v.decode(ids, skip_pad=False) == ["a", PAD_TOKEN]

    def test_roundtrip(self):
        v = build([["x", "y", "z"]])
        tokens = ["x", "z", "y"]
        assert v.decode(v.encode(tokens)) == tokens

    def test_contains(self):
        v = build([["hello"]])
        assert "hello" in v
        assert "goodbye" not in v

    @given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=0, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_encode_always_in_range(self, tokens):
        v = build([["a", "b"]])
        ids = v.encode(tokens, length=10)
        assert len(ids) == 10
        assert (ids >= 0).all() and (ids < len(v)).all()


class TestDecodeOutOfRange:
    """decode must map bad indices to UNK, mirroring index_of's fallback."""

    def test_too_large_index_decodes_to_unk(self):
        v = build([["a"]])
        assert v.decode([len(v)]) == [UNK_TOKEN]
        assert v.decode([len(v) + 1000]) == [UNK_TOKEN]

    def test_negative_index_decodes_to_unk(self):
        # -1 used to silently wrap to the *last* vocabulary token.
        v = build([["a", "b"]])
        assert v.decode([-1]) == [UNK_TOKEN]
        assert v.decode([-len(v) - 5]) == [UNK_TOKEN]

    def test_mixed_good_and_bad_indices(self):
        v = build([["a"]])
        a = v.index_of("a")
        assert v.decode([a, len(v), -3, a]) == ["a", UNK_TOKEN, UNK_TOKEN, "a"]

    def test_numpy_indices_accepted(self):
        v = build([["a"]])
        ids = np.array([v.index_of("a"), len(v), -1], dtype=np.int64)
        assert v.decode(ids) == ["a", UNK_TOKEN, UNK_TOKEN]

    @given(st.lists(st.integers(min_value=-100, max_value=100), max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_decode_never_raises(self, indices):
        v = build([["a", "b", "c"]])
        tokens = v.decode(indices)
        assert all(isinstance(tok, str) for tok in tokens)
        assert len(tokens) <= len(indices)
