"""Unit tests for PPMI-SVD word embeddings."""

import numpy as np

from repro.text import Vocabulary, random_embeddings, train_ppmi_svd_embeddings


def corpus():
    """Two clear topical clusters: fruit words and metal words."""
    fruit = ["apple", "banana", "cherry"]
    metal = ["iron", "copper", "zinc"]
    docs = []
    rng = np.random.default_rng(0)
    for _ in range(200):
        group = fruit if rng.random() < 0.5 else metal
        docs.append(list(rng.choice(group, size=4)))
    return docs


class TestPPMISVD:
    def test_shape(self):
        docs = corpus()
        vocab = Vocabulary.build(docs)
        table = train_ppmi_svd_embeddings(docs, vocab, dim=8)
        assert table.shape == (len(vocab), 8)

    def test_pad_row_is_zero(self):
        docs = corpus()
        vocab = Vocabulary.build(docs)
        table = train_ppmi_svd_embeddings(docs, vocab, dim=8)
        np.testing.assert_allclose(table[vocab.pad_index], 0.0)

    def test_semantic_clusters(self):
        docs = corpus()
        vocab = Vocabulary.build(docs)
        table = train_ppmi_svd_embeddings(docs, vocab, dim=8)

        def cos(a, b):
            x, y = table[vocab.index_of(a)], table[vocab.index_of(b)]
            return x @ y / (np.linalg.norm(x) * np.linalg.norm(y) + 1e-12)

        assert cos("apple", "banana") > cos("apple", "iron")
        assert cos("iron", "copper") > cos("iron", "cherry")

    def test_deterministic(self):
        docs = corpus()
        vocab = Vocabulary.build(docs)
        t1 = train_ppmi_svd_embeddings(docs, vocab, dim=8, seed=3)
        t2 = train_ppmi_svd_embeddings(docs, vocab, dim=8, seed=3)
        np.testing.assert_allclose(t1, t2)

    def test_unseen_tokens_get_small_vectors(self):
        docs = corpus()
        vocab = Vocabulary.build(docs + [["neverseen"]])
        # remove the doc so 'neverseen' has no co-occurrences
        table = train_ppmi_svd_embeddings(docs, vocab, dim=8)
        vec = table[vocab.index_of("neverseen")]
        assert 0 < np.linalg.norm(vec) < 0.2

    def test_empty_corpus_falls_back_to_random(self):
        vocab = Vocabulary.build([["a", "b"]])
        table = train_ppmi_svd_embeddings([], vocab, dim=4)
        assert table.shape == (len(vocab), 4)
        np.testing.assert_allclose(table[vocab.pad_index], 0.0)

    def test_dim_larger_than_vocab_pads_with_zeros(self):
        docs = [["a", "b"], ["b", "a"]]
        vocab = Vocabulary.build(docs)
        table = train_ppmi_svd_embeddings(docs, vocab, dim=32)
        assert table.shape == (len(vocab), 32)

    def test_invalid_dim(self):
        vocab = Vocabulary.build([["a"]])
        import pytest

        with pytest.raises(ValueError):
            train_ppmi_svd_embeddings([["a"]], vocab, dim=0)


class TestRandomEmbeddings:
    def test_deterministic(self):
        np.testing.assert_allclose(
            random_embeddings(10, 4, seed=1), random_embeddings(10, 4, seed=1)
        )

    def test_pad_zeroed(self):
        table = random_embeddings(5, 3, pad_index=0)
        np.testing.assert_allclose(table[0], 0.0)

    def test_no_pad_index(self):
        table = random_embeddings(5, 3, pad_index=None)
        assert np.linalg.norm(table[0]) > 0
